package circuit

import (
	"fmt"
	"math"

	"easybo/internal/linalg"
)

// ACResult holds the complex node solutions of a frequency sweep.
type ACResult struct {
	c     *Circuit
	Freqs []float64      // Hz
	X     [][]complex128 // one unknown vector per frequency
}

// AC runs a small-signal sweep at the given frequencies, linearizing all
// nonlinear devices at op (which may come from OP or, for linear
// small-signal macromodels, be a zero vector).
func (c *Circuit) AC(op *Solution, freqs []float64) (*ACResult, error) {
	if err := c.Compile(); err != nil {
		return nil, err
	}
	var opX []float64
	if op != nil {
		opX = op.X
	} else {
		opX = make([]float64, c.unknowns)
	}
	res := &ACResult{c: c, Freqs: append([]float64(nil), freqs...), X: make([][]complex128, len(freqs))}
	n := c.unknowns
	for k, f := range freqs {
		e := &acEnv{omega: 2 * math.Pi * f, c: c, op: opX,
			A: linalg.NewCMatrix(n, n), b: make([]complex128, n)}
		for _, d := range c.devices {
			if s, ok := d.(acStamper); ok {
				s.stampAC(e)
			}
		}
		for i := 0; i < len(c.names)-1; i++ {
			e.A.Add(i, i, complex(1e-12, 0))
		}
		x, err := linalg.SolveComplexLinear(e.A, e.b)
		if err != nil {
			return nil, fmt.Errorf("circuit %q: AC solve at %g Hz: %w", c.Name, f, err)
		}
		res.X[k] = x
	}
	return res, nil
}

// V returns the complex voltage of a named node at frequency index k.
func (r *ACResult) V(k int, node string) complex128 {
	idx, ok := r.c.nodes[node]
	if !ok || idx == 0 {
		return 0
	}
	return r.X[k][idx-1]
}

// LogSpace returns n log-spaced frequencies from f0 to f1 inclusive.
func LogSpace(f0, f1 float64, n int) []float64 {
	if n < 2 {
		return []float64{f0}
	}
	out := make([]float64, n)
	l0, l1 := math.Log10(f0), math.Log10(f1)
	for i := range out {
		out[i] = math.Pow(10, l0+(l1-l0)*float64(i)/float64(n-1))
	}
	return out
}
