package bo

import (
	"math/rand"

	"easybo/internal/core"
)

// newModelManager builds the shared surrogate manager (core.ModelManager)
// from a driver Config. The manager lives in core so the executor-driven
// drivers here, the public ask/tell Loop, and the serve sessions all share
// one surrogate-cadence and backend-escalation implementation.
func newModelManager(lo, hi []float64, rng *rand.Rand, cfg Config) (*core.ModelManager, error) {
	return core.NewModelManager(lo, hi, rng, core.ModelManagerOptions{
		RefitEvery:  cfg.RefitEvery,
		FitIters:    cfg.FitIters,
		FitRestarts: cfg.FitRestarts,
		Kernel:      cfg.Kernel,
		Backend:     cfg.Surrogate,
		EscalateAt:  cfg.EscalateAt,
		Features:    cfg.Features,
	})
}
