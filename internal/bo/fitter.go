package bo

import (
	"math/rand"

	"easybo/internal/gp"
)

// modelManager owns the surrogate across a run: it re-optimizes
// hyperparameters every refitEvery observations (warm-started from the last
// fit) and performs cheap fixed-hyperparameter refits in between, caching
// the fitted model while the dataset is unchanged.
type modelManager struct {
	lo, hi      []float64
	rng         *rand.Rand
	refitEvery  int
	fitIters    int
	fitRestarts int

	kernel     gp.Kernel
	lastHyperN int // dataset size at the last hyperparameter optimization
	theta      []float64
	logNoise   float64
	cached     *gp.Model
	cachedN    int
}

func newModelManager(lo, hi []float64, rng *rand.Rand, cfg Config) *modelManager {
	return &modelManager{
		lo: lo, hi: hi, rng: rng,
		refitEvery:  cfg.RefitEvery,
		fitIters:    cfg.FitIters,
		fitRestarts: cfg.FitRestarts,
		kernel:      cfg.Kernel,
	}
}

// fit returns a surrogate trained on the observations, re-optimizing
// hyperparameters on the configured cadence. Observations are append-only
// across a run, so a cached model is valid while the count is unchanged and
// can absorb new points through the incremental rank-append update — between
// hyperparameter refits no covariance rebuild or refactorization happens.
func (mm *modelManager) fit(x [][]float64, y []float64) (*gp.Model, error) {
	n := len(y)
	if mm.cached != nil && n == mm.cachedN {
		return mm.cached, nil
	}
	if mm.theta != nil && n-mm.lastHyperN < mm.refitEvery {
		// Between hyperparameter refits: absorb the new points through the
		// rank-append update. Failure means the frozen hyperparameters or
		// standardization became numerically unusable for the grown dataset
		// (e.g. duplicate points with tiny noise); fall through to a fresh
		// hyperparameter fit in that case.
		m, err := mm.cached.Extend(x[mm.cachedN:n], y[mm.cachedN:n])
		if err == nil {
			mm.cached = m
			mm.cachedN = n
			return m, nil
		}
	}
	fo := &gp.FitOptions{Iters: mm.fitIters, Restarts: mm.fitRestarts}
	if mm.theta != nil {
		// Warm start: fewer iterations, no default or random restarts.
		fo.InitTheta = mm.theta
		fo.InitNoise = mm.logNoise
		fo.WarmOnly = true
		fo.Iters = mm.fitIters / 2
		if fo.Iters < 10 {
			fo.Iters = 10
		}
	}
	m, err := gp.Train(x, y, mm.lo, mm.hi, mm.rng, &gp.TrainOptions{Kernel: mm.kernel, Fit: fo})
	if err != nil {
		return nil, err
	}
	mm.theta = m.Theta()
	mm.logNoise = m.LogNoise()
	mm.lastHyperN = n
	mm.cached = m
	mm.cachedN = n
	return m, nil
}
