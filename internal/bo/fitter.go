package bo

import (
	"math/rand"

	"easybo/internal/core"
)

// newModelManager builds the shared surrogate manager (core.ModelManager)
// from a driver Config. The manager lives in core so the executor-driven
// drivers here, the public ask/tell Loop, and the serve sessions all share
// one surrogate-cadence implementation.
func newModelManager(lo, hi []float64, rng *rand.Rand, cfg Config) *core.ModelManager {
	return core.NewModelManager(lo, hi, rng, core.ModelManagerOptions{
		RefitEvery:  cfg.RefitEvery,
		FitIters:    cfg.FitIters,
		FitRestarts: cfg.FitRestarts,
		Kernel:      cfg.Kernel,
	})
}
