package bo

import (
	"math/rand"

	"easybo/internal/gp"
)

// modelManager owns the surrogate across a run: it re-optimizes
// hyperparameters every refitEvery observations (warm-started from the last
// fit) and performs cheap fixed-hyperparameter refits in between, caching
// the fitted model while the dataset is unchanged.
type modelManager struct {
	lo, hi      []float64
	rng         *rand.Rand
	refitEvery  int
	fitIters    int
	fitRestarts int

	kernel     gp.Kernel
	lastHyperN int // dataset size at the last hyperparameter optimization
	theta      []float64
	logNoise   float64
	cached     *gp.Model
	cachedN    int
}

func newModelManager(lo, hi []float64, rng *rand.Rand, cfg Config) *modelManager {
	return &modelManager{
		lo: lo, hi: hi, rng: rng,
		refitEvery:  cfg.RefitEvery,
		fitIters:    cfg.FitIters,
		fitRestarts: cfg.FitRestarts,
		kernel:      cfg.Kernel,
	}
}

// fit returns a surrogate trained on the observations, re-optimizing
// hyperparameters on the configured cadence. Observations are append-only
// across a run, so a cached model is valid while the count is unchanged.
func (mm *modelManager) fit(x [][]float64, y []float64) (*gp.Model, error) {
	n := len(y)
	if mm.cached != nil && n == mm.cachedN {
		return mm.cached, nil
	}
	needHyper := mm.theta == nil || n-mm.lastHyperN >= mm.refitEvery
	var opts gp.TrainOptions
	if needHyper {
		fo := &gp.FitOptions{Iters: mm.fitIters, Restarts: mm.fitRestarts}
		if mm.theta != nil {
			// Warm start: fewer iterations, no random restarts.
			fo.InitTheta = mm.theta
			fo.InitNoise = mm.logNoise
			fo.Iters = mm.fitIters / 2
			if fo.Iters < 10 {
				fo.Iters = 10
			}
			fo.Restarts = 1
		}
		opts = gp.TrainOptions{Kernel: mm.kernel, Fit: fo}
	} else {
		opts = gp.TrainOptions{Kernel: mm.kernel, FixedTheta: mm.theta, FixedNoise: mm.logNoise}
	}
	m, err := gp.Train(x, y, mm.lo, mm.hi, mm.rng, &opts)
	if err != nil && !needHyper {
		// The fixed hyperparameters may have become numerically unusable for
		// the grown dataset (e.g. duplicate points with tiny noise); fall
		// back to a fresh hyperparameter fit.
		needHyper = true
		m, err = gp.Train(x, y, mm.lo, mm.hi, mm.rng,
			&gp.TrainOptions{Kernel: mm.kernel, Fit: &gp.FitOptions{Iters: mm.fitIters, Restarts: mm.fitRestarts}})
	}
	if err != nil {
		return nil, err
	}
	if needHyper {
		mm.theta = m.Theta()
		mm.logNoise = m.LogNoise()
		mm.lastHyperN = n
	}
	mm.cached = m
	mm.cachedN = n
	return m, nil
}
