package bo

import (
	"math"
	"testing"

	"easybo/internal/core"
	"easybo/internal/objective"
	"easybo/internal/sched"
	"easybo/internal/surrogate"
)

// fastCfg keeps the surrogate machinery light for tests.
func fastCfg(algo Algorithm, b int, evals int, seed int64) Config {
	return Config{
		Algo: algo, BatchSize: b, InitPoints: 10, MaxEvals: evals, Seed: seed,
		FitIters: 15, RefitEvery: 10, AcqCandidates: 120, AcqRefine: 1,
	}
}

func TestAllAlgorithmsRunAndRespectBudget(t *testing.T) {
	p := objective.Branin()
	algos := []struct {
		a Algorithm
		b int
	}{
		{AlgoRandom, 3}, {AlgoEI, 1}, {AlgoLCB, 1}, {AlgoEasyBOSeq, 1},
		{AlgoPBO, 4}, {AlgoPHCBO, 4}, {AlgoEasyBOS, 4}, {AlgoEasyBOSP, 4},
		{AlgoEasyBOA, 4}, {AlgoEasyBO, 4},
	}
	for _, tc := range algos {
		h, err := Run(p, fastCfg(tc.a, tc.b, 30, 7))
		if err != nil {
			t.Fatalf("%s: %v", tc.a, err)
		}
		if len(h.Records) != 30 {
			t.Fatalf("%s: %d records, want 30", tc.a, len(h.Records))
		}
		if math.IsInf(h.BestY, -1) || h.BestX == nil {
			t.Fatalf("%s: empty best", tc.a)
		}
		if h.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespan", tc.a)
		}
		for _, r := range h.Records {
			for j := range r.X {
				if r.X[j] < p.Lo[j]-1e-9 || r.X[j] > p.Hi[j]+1e-9 {
					t.Fatalf("%s: out-of-box query %v", tc.a, r.X)
				}
			}
		}
	}
}

func TestDERunsAndIsSequential(t *testing.T) {
	p := objective.WithCost(objective.Sphere(3), func(x []float64) float64 { return 2 })
	h, err := Run(p, Config{Algo: AlgoDE, MaxEvals: 200, Seed: 1, DEPop: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 200 {
		t.Fatalf("records = %d", len(h.Records))
	}
	// Sequential: makespan = 200 evals × 2 s.
	if math.Abs(h.Makespan-400) > 1e-9 {
		t.Fatalf("makespan = %v, want 400", h.Makespan)
	}
	if h.BestY < -1.0 {
		t.Fatalf("DE on sphere should get close to 0, got %v", h.BestY)
	}
}

func TestBOBeatsRandomOnBranin(t *testing.T) {
	p := objective.Branin()
	var boBest, rndBest float64
	var boSum, rndSum float64
	const runs = 3
	for s := int64(0); s < runs; s++ {
		hb, err := Run(p, fastCfg(AlgoEasyBOSeq, 1, 40, s))
		if err != nil {
			t.Fatal(err)
		}
		hr, err := Run(p, fastCfg(AlgoRandom, 1, 40, s))
		if err != nil {
			t.Fatal(err)
		}
		boSum += hb.BestY
		rndSum += hr.BestY
		boBest, rndBest = hb.BestY, hr.BestY
	}
	_ = boBest
	_ = rndBest
	if boSum/runs < rndSum/runs-0.5 {
		t.Fatalf("BO (%v) should not lose clearly to random (%v)", boSum/runs, rndSum/runs)
	}
	// BO should land near the Branin optimum (0) on average.
	if boSum/runs < -2.0 {
		t.Fatalf("EasyBO-seq mean best %v too far from optimum", boSum/runs)
	}
}

func TestDeterminismGivenSeed(t *testing.T) {
	p := objective.Hartmann6()
	for _, algo := range []Algorithm{AlgoEasyBO, AlgoPBO, AlgoEasyBOSP} {
		h1, err := Run(p, fastCfg(algo, 3, 25, 99))
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Run(p, fastCfg(algo, 3, 25, 99))
		if err != nil {
			t.Fatal(err)
		}
		if h1.BestY != h2.BestY || h1.Makespan != h2.Makespan {
			t.Fatalf("%s: non-deterministic: %v/%v vs %v/%v",
				algo, h1.BestY, h1.Makespan, h2.BestY, h2.Makespan)
		}
		for i := range h1.Records {
			if h1.Records[i].Y != h2.Records[i].Y {
				t.Fatalf("%s: record %d differs", algo, i)
			}
		}
	}
}

// heteroCost makes evaluation time depend strongly on position, creating
// the async advantage the paper exploits.
func heteroCost(x []float64) float64 {
	return 10 + 8*math.Sin(3*x[0])*math.Sin(3*x[0])
}

func TestAsyncFasterThanSyncAtEqualBudget(t *testing.T) {
	p := objective.WithCost(objective.Branin(), heteroCost)
	const b, evals = 5, 40
	var syncT, asyncT float64
	for s := int64(0); s < 3; s++ {
		hs, err := Run(p, fastCfg(AlgoEasyBOSP, b, evals, s))
		if err != nil {
			t.Fatal(err)
		}
		ha, err := Run(p, fastCfg(AlgoEasyBO, b, evals, s))
		if err != nil {
			t.Fatal(err)
		}
		syncT += hs.Makespan
		asyncT += ha.Makespan
	}
	if asyncT >= syncT {
		t.Fatalf("async makespan %v should beat sync %v", asyncT, syncT)
	}
}

func TestBatchFasterThanSequentialAtEqualBudget(t *testing.T) {
	p := objective.WithCost(objective.Branin(), func([]float64) float64 { return 5 })
	h1, err := Run(p, fastCfg(AlgoEasyBOSeq, 1, 30, 3))
	if err != nil {
		t.Fatal(err)
	}
	h5, err := Run(p, fastCfg(AlgoEasyBO, 5, 30, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Constant cost: async B=5 must be ≈5× faster.
	ratio := h1.Makespan / h5.Makespan
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("speed-up = %v, want ≈5", ratio)
	}
}

func TestHistoryCurves(t *testing.T) {
	recs := []sched.Result{
		{ID: 0, Y: 1, End: 10},
		{ID: 1, Y: 3, End: 5},
		{ID: 2, Y: 2, End: 20},
	}
	h := newHistory(AlgoRandom, 1, recs, nil)
	if h.BestY != 3 || h.Makespan != 20 {
		t.Fatalf("history %+v", h)
	}
	bsf := h.BestSoFar()
	want := []float64{1, 3, 3}
	for i := range bsf {
		if bsf[i] != want[i] {
			t.Fatalf("BestSoFar = %v", bsf)
		}
	}
	curve := h.CurveVsTime([]float64{0, 5, 10, 20, 30})
	if !math.IsInf(curve[0], -1) {
		t.Fatal("curve before first completion must be -Inf")
	}
	wantCurve := []float64{3, 3, 3, 3}
	for i, w := range wantCurve {
		if curve[i+1] != w {
			t.Fatalf("curve = %v", curve)
		}
	}
	if tt, ok := h.TimeToReach(2.5); !ok || tt != 5 {
		t.Fatalf("TimeToReach(2.5) = %v %v", tt, ok)
	}
	if _, ok := h.TimeToReach(99); ok {
		t.Fatal("unreachable level must report not-ok")
	}
}

func TestAlgorithmLabels(t *testing.T) {
	if AlgoEasyBO.Label(15) != "EasyBO-15" {
		t.Fatal(AlgoEasyBO.Label(15))
	}
	if AlgoEI.Label(5) != "EI" {
		t.Fatal(AlgoEI.Label(5))
	}
	if AlgoEasyBOSeq.Label(1) != "EasyBO" {
		t.Fatal(AlgoEasyBOSeq.Label(1))
	}
	if !AlgoEasyBO.IsAsync() || AlgoEasyBOSP.IsAsync() {
		t.Fatal("IsAsync wrong")
	}
	if !AlgoPBO.IsBatch() || AlgoEI.IsBatch() {
		t.Fatal("IsBatch wrong")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{Algo: AlgoEI}); err == nil {
		t.Fatal("nil problem must fail")
	}
	bad := &objective.Problem{Name: "bad", Lo: []float64{1}, Hi: []float64{0},
		Eval: func(x []float64) float64 { return 0 }}
	if _, err := Run(bad, Config{Algo: AlgoEI}); err == nil {
		t.Fatal("empty box must fail")
	}
	if _, err := Run(objective.Branin(), Config{Algo: "nope"}); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

func TestInitBudgetClamp(t *testing.T) {
	// MaxEvals smaller than the default init size: init is clamped and the
	// run still produces exactly MaxEvals records.
	p := objective.Branin()
	h, err := Run(p, Config{Algo: AlgoRandom, MaxEvals: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 7 {
		t.Fatalf("records = %d", len(h.Records))
	}
}

func TestEasyBOPenalizationDiversifiesBatch(t *testing.T) {
	// On a smooth objective, EasyBO-SP batches must be more spread out than
	// EasyBO-S batches on average (paper §III-C's purpose). We check that
	// the minimum pairwise distance within proposal batches is larger with
	// penalization.
	p := objective.Branin()
	spread := func(algo Algorithm) float64 {
		h, err := Run(p, fastCfg(algo, 5, 35, 5))
		if err != nil {
			t.Fatal(err)
		}
		// Proposal phase records (after the 10 init points): group by batch
		// of 5 in completion order.
		recs := h.Records[10:]
		var minD float64 = math.Inf(1)
		for i := 0; i+5 <= len(recs); i += 5 {
			for a := i; a < i+5; a++ {
				for b := a + 1; b < i+5; b++ {
					var d float64
					for j := range recs[a].X {
						diff := (recs[a].X[j] - recs[b].X[j]) / (p.Hi[j] - p.Lo[j])
						d += diff * diff
					}
					if d = math.Sqrt(d); d < minD {
						minD = d
					}
				}
			}
		}
		return minD
	}
	if sp, s := spread(AlgoEasyBOSP), spread(AlgoEasyBOS); sp < s*0.5 {
		t.Fatalf("penalized batches should not be much tighter: SP=%v S=%v", sp, s)
	}
}

func TestThompsonSamplingDriver(t *testing.T) {
	p := objective.Branin()
	// Sequential TS.
	h1, err := Run(p, fastCfg(AlgoTS, 1, 30, 21))
	if err != nil {
		t.Fatal(err)
	}
	if len(h1.Records) != 30 {
		t.Fatalf("TS records = %d", len(h1.Records))
	}
	// Parallel TS: independent draws per slot.
	h4, err := Run(p, fastCfg(AlgoTS, 4, 30, 21))
	if err != nil {
		t.Fatal(err)
	}
	if len(h4.Records) != 30 {
		t.Fatalf("parallel TS records = %d", len(h4.Records))
	}
	// TS on a smooth 2-D problem with 30 evals should beat -20 comfortably.
	if h1.BestY < -20 || h4.BestY < -20 {
		t.Fatalf("TS best too poor: %v / %v", h1.BestY, h4.BestY)
	}
	// Batches must not collapse to one point: check within-batch diversity.
	recs := h4.Records[10:]
	dup := 0
	for i := 0; i+4 <= len(recs); i += 4 {
		for a := i; a < i+4; a++ {
			for b := a + 1; b < i+4; b++ {
				if recs[a].X[0] == recs[b].X[0] && recs[a].X[1] == recs[b].X[1] {
					dup++
				}
			}
		}
	}
	if dup > len(recs)/4 {
		t.Fatalf("parallel TS collapsed: %d duplicate pairs", dup)
	}
}

func TestPortfolioDriver(t *testing.T) {
	p := objective.Branin()
	h, err := Run(p, fastCfg(AlgoPortfolio, 1, 35, 13))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 35 {
		t.Fatalf("records = %d", len(h.Records))
	}
	if h.BestY < -20 {
		t.Fatalf("GP-Hedge best too poor: %v", h.BestY)
	}
	// Portfolio is forced sequential even if a batch size is requested.
	h2, err := Run(p, fastCfg(AlgoPortfolio, 8, 25, 13))
	if err != nil {
		t.Fatal(err)
	}
	if h2.BatchSize != 1 {
		t.Fatalf("portfolio must run sequentially, got B=%d", h2.BatchSize)
	}
}

func TestNaNObjectiveFailsFast(t *testing.T) {
	// An objective that returns NaN must produce a clear error, not a panic
	// or a silently corrupted surrogate.
	p := &objective.Problem{
		Name: "nan", Lo: []float64{0}, Hi: []float64{1},
		Eval: func(x []float64) float64 {
			if x[0] > 0.5 {
				return math.NaN()
			}
			return x[0]
		},
	}
	_, err := Run(p, fastCfg(AlgoEasyBO, 3, 30, 1))
	if err == nil {
		t.Fatal("NaN objective must surface an error")
	}
}

func TestRunAsyncSkipsFailedEvaluations(t *testing.T) {
	// A problem whose objective diverges (NaN) on part of the box: with
	// FailSkip the run completes, failures are recorded separately, and the
	// surrogate/modelManager only ever see successful observations even
	// though the observation count diverges from the launch count.
	p := objective.Branin()
	base := p.Eval
	p = &objective.Problem{Name: "flaky-branin", Lo: p.Lo, Hi: p.Hi,
		Cost: func(x []float64) float64 { return 1 + x[1]/10 },
		Eval: func(x []float64) float64 {
			if x[0] < -3 { // a slice of the box always fails
				return math.NaN()
			}
			return base(x)
		},
	}
	cfg := fastCfg(AlgoEasyBO, 4, 30, 13)
	cfg.Failure = core.FailSkip
	h, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records)+len(h.Failed) != 30 {
		t.Fatalf("records %d + failed %d != 30", len(h.Records), len(h.Failed))
	}
	if len(h.Failed) == 0 {
		t.Fatal("expected some failed evaluations on this seed")
	}
	for _, r := range h.Records {
		if math.IsNaN(r.Y) || r.Err != nil {
			t.Fatalf("failed evaluation leaked into Records: %+v", r)
		}
	}
	for _, r := range h.Failed {
		if r.Err == nil {
			t.Fatalf("healthy evaluation in Failed: %+v", r)
		}
	}
	util := h.WorkerUtilization()
	if len(util) != 4 {
		t.Fatalf("utilization workers = %d", len(util))
	}
	var totalBusy float64
	for _, u := range util {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("utilization out of range: %v", util)
		}
		totalBusy += u
	}
	if totalBusy <= 0 {
		t.Fatal("no busy time accounted")
	}
}

func TestRunSyncHonorsFailurePolicy(t *testing.T) {
	// The synchronous drivers share the failure contract: NaN evaluations
	// abort by default, and under FailSkip they consume budget without
	// reaching the surrogate or Records.
	flaky := func() *objective.Problem {
		p := objective.Branin()
		base := p.Eval
		return &objective.Problem{Name: "flaky", Lo: p.Lo, Hi: p.Hi,
			Eval: func(x []float64) float64 {
				if x[0] < -3 {
					return math.NaN()
				}
				return base(x)
			},
		}
	}
	for _, algo := range []Algorithm{AlgoPBO, AlgoRandom, AlgoDE} {
		cfg := fastCfg(algo, 4, 30, 13)
		if _, err := Run(flaky(), cfg); err == nil {
			t.Fatalf("%s: NaN evaluation must abort by default", algo)
		}
		cfg.Failure = core.FailSkip
		h, err := Run(flaky(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(h.Records)+len(h.Failed) != 30 {
			t.Fatalf("%s: records %d + failed %d != 30", algo, len(h.Records), len(h.Failed))
		}
		if len(h.Failed) == 0 {
			t.Fatalf("%s: expected failures on this seed", algo)
		}
		for _, r := range h.Records {
			if math.IsNaN(r.Y) || r.Err != nil {
				t.Fatalf("%s: failure leaked into Records: %+v", algo, r)
			}
		}
	}
}

// TestDriversRunOnEveryBackend runs representative drivers on the explicit
// feature-space backend and on auto with a mid-run escalation; every driver
// must complete its budget regardless of the surrogate behind the seam.
func TestDriversRunOnEveryBackend(t *testing.T) {
	p := objective.Branin()
	algos := []struct {
		a Algorithm
		b int
	}{
		{AlgoEI, 1}, {AlgoEasyBOSeq, 1}, {AlgoPBO, 3}, {AlgoTS, 3},
		{AlgoPortfolio, 1}, {AlgoEasyBOA, 3}, {AlgoEasyBO, 3},
	}
	backends := []struct {
		name string
		mod  func(*Config)
	}{
		{"features", func(c *Config) { c.Surrogate = surrogate.BackendFeatures; c.Features = 64 }},
		{"auto-escalating", func(c *Config) { c.Surrogate = surrogate.BackendAuto; c.EscalateAt = 18; c.Features = 64 }},
	}
	for _, be := range backends {
		for _, tc := range algos {
			cfg := fastCfg(tc.a, tc.b, 28, 11)
			be.mod(&cfg)
			h, err := Run(p, cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", tc.a, be.name, err)
			}
			if len(h.Records) != 28 {
				t.Fatalf("%s on %s: %d records, want 28", tc.a, be.name, len(h.Records))
			}
			if math.IsInf(h.BestY, -1) || h.BestX == nil {
				t.Fatalf("%s on %s: empty best", tc.a, be.name)
			}
			for _, r := range h.Records {
				for j := range r.X {
					if r.X[j] < p.Lo[j]-1e-9 || r.X[j] > p.Hi[j]+1e-9 {
						t.Fatalf("%s on %s: out-of-box query %v", tc.a, be.name, r.X)
					}
				}
			}
		}
	}
}
