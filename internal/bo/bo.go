// Package bo contains the Bayesian-optimization drivers that the paper's
// experiments run: sequential BO (EI, LCB, sequential EasyBO), synchronous
// batch BO (pBO, pHCBO, EasyBO-S, EasyBO-SP), asynchronous batch BO
// (EasyBO-A and full EasyBO via internal/core), and the non-BO baselines
// (differential evolution, random search).
//
// All drivers execute on the virtual-time engine of internal/sched, so the
// "simulation time" accounting of Tables I/II and Figures 4/6 is exact and
// machine-independent.
package bo

import (
	"context"
	"fmt"
	"math"
	"sort"

	"easybo/internal/core"
	"easybo/internal/gp"
	"easybo/internal/sched"
	"easybo/internal/surrogate"
)

// Algorithm names the optimization strategies of the paper's §IV.
type Algorithm string

// The algorithms evaluated in the paper's experiment tables.
const (
	AlgoDE        Algorithm = "DE"         // differential evolution [13]
	AlgoRandom    Algorithm = "Random"     // uniform random search (extra baseline)
	AlgoEI        Algorithm = "EI"         // sequential BO, expected improvement
	AlgoLCB       Algorithm = "LCB"        // sequential BO, confidence bound
	AlgoEasyBOSeq Algorithm = "EasyBO-seq" // sequential EasyBO (Table rows "EasyBO" top block)
	AlgoPBO       Algorithm = "pBO"        // sync batch, fixed weight ladder (Eq. 4)
	AlgoPHCBO     Algorithm = "pHCBO"      // pBO + high-coverage penalty (Eq. 5-6)
	AlgoEasyBOS   Algorithm = "EasyBO-S"   // sync batch, κ-sampled weights, no penalization
	AlgoEasyBOSP  Algorithm = "EasyBO-SP"  // sync batch + hallucination penalization
	AlgoEasyBOA   Algorithm = "EasyBO-A"   // async batch, no penalization
	AlgoEasyBO    Algorithm = "EasyBO"     // async batch + penalization (the paper's method)
	AlgoTS        Algorithm = "TS"         // Thompson sampling via random Fourier features
	AlgoPortfolio Algorithm = "GP-Hedge"   // portfolio of EI/PI/UCB with hedge weights [31]
	// (sequential at B=1; independent posterior draws per batch slot at B>1,
	// i.e. classic parallel Thompson sampling — an extra baseline beyond the
	// paper, cited in its §II-B acquisition survey)
)

// Config selects and tunes an optimization run.
type Config struct {
	Algo       Algorithm
	BatchSize  int   // parallel workers B (default 1)
	InitPoints int   // initial random design size (default 20, as in §IV)
	MaxEvals   int   // total simulations including the initial design
	Seed       int64 // master seed; every run is deterministic given it

	// EasyBO knobs.
	Lambda float64 // κ upper bound of Eq. (8) (default 6.0)

	// Surrogate management.
	RefitEvery  int       // hyperparameter re-optimization cadence in observations (default 5)
	FitIters    int       // Adam iterations per hyperfit (default 40)
	FitRestarts int       // random restarts on the first hyperfit (default 1)
	Kernel      gp.Kernel // surrogate kernel (default SE-ARD, the paper's choice)

	// Surrogate selects the backend: exact GP, feature-space, or auto
	// (exact below EscalateAt observations, feature-space past it; the
	// default). EscalateAt <= 0 means surrogate.DefaultEscalateAt, and
	// Features <= 0 means surrogate.DefaultFeatures.
	Surrogate  surrogate.Backend
	EscalateAt int
	Features   int

	// Inner acquisition maximizer.
	AcqCandidates int // candidate sweep size (default 60·d, min 200)
	AcqRefine     int // simplex refinements (default 2)

	// Baseline knobs.
	KappaLCB float64 // LCB/UCB κ (default 2.0)
	XiEI     float64 // EI exploration margin in standardized units (default 0.01)
	DEPop    int     // DE population (default 50)

	// pHCBO knobs (Eq. 6).
	NHC      float64 // penalty scale (default 100)
	HCRadius float64 // veto radius in normalized space (default 0.1)

	// Failure policy for the virtual-engine drivers: what to do when an
	// evaluation fails (its objective returned NaN). Default core.FailAbort.
	Failure     core.FailurePolicy
	MaxFailures int // bound on tolerated failures (0 = policy default)
	// Ctx cancels the run between completions (nil = never). Honored by
	// every driver (async, sync, random, DE).
	Ctx context.Context
}

func (c *Config) defaults(dim int) {
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.InitPoints <= 0 {
		c.InitPoints = 20
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 150
	}
	if c.MaxEvals < c.InitPoints {
		c.InitPoints = c.MaxEvals
	}
	if c.Lambda <= 0 {
		c.Lambda = 6.0
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 5
	}
	if c.FitIters <= 0 {
		c.FitIters = 40
	}
	if c.FitRestarts <= 0 {
		c.FitRestarts = 1
	}
	if c.KappaLCB <= 0 {
		c.KappaLCB = 2.0
	}
	if c.XiEI <= 0 {
		c.XiEI = 0.01
	}
	if c.DEPop <= 0 {
		c.DEPop = 50
	}
	if c.NHC <= 0 {
		c.NHC = 100
	}
	if c.HCRadius <= 0 {
		c.HCRadius = 0.1
	}
	_ = dim
}

// History is the full trace of one optimization run.
type History struct {
	Algo      Algorithm
	BatchSize int
	Records   []sched.Result // successful completions, in completion order
	Failed    []sched.Result // failed evaluations (skipped or resubmitted)
	BestY     float64
	BestX     []float64
	Makespan  float64 // virtual seconds from start to last completion
}

// newHistory finalizes the successful and failed record lists into a History.
func newHistory(algo Algorithm, b int, recs, failed []sched.Result) *History {
	h := &History{Algo: algo, BatchSize: b, Records: recs, Failed: failed, BestY: math.Inf(-1)}
	for _, r := range recs {
		if r.Y > h.BestY {
			h.BestY = r.Y
			h.BestX = r.X
		}
		if r.End > h.Makespan {
			h.Makespan = r.End
		}
	}
	for _, r := range failed {
		if r.End > h.Makespan {
			h.Makespan = r.End
		}
	}
	return h
}

// WorkerUtilization returns the fraction of the makespan each of the B
// workers spent evaluating, counting failed evaluations (they occupied
// their slot too).
func (h *History) WorkerUtilization() []float64 {
	all := make([]sched.Result, 0, len(h.Records)+len(h.Failed))
	all = append(all, h.Records...)
	all = append(all, h.Failed...)
	return sched.Utilization(all, h.BatchSize)
}

// BestSoFar returns the running maximum of Y in completion order.
func (h *History) BestSoFar() []float64 {
	out := make([]float64, len(h.Records))
	best := math.Inf(-1)
	for i, r := range h.Records {
		if r.Y > best {
			best = r.Y
		}
		out[i] = best
	}
	return out
}

// CurveVsTime returns the best objective value observed up to each query
// time (a right-continuous step function; -Inf before the first completion).
// Used to regenerate the paper's Figures 4 and 6.
func (h *History) CurveVsTime(ts []float64) []float64 {
	// Sort completions by End.
	type pt struct{ t, y float64 }
	pts := make([]pt, len(h.Records))
	for i, r := range h.Records {
		pts[i] = pt{r.End, r.Y}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].t < pts[b].t })
	out := make([]float64, len(ts))
	best := math.Inf(-1)
	j := 0
	for i, t := range ts {
		for j < len(pts) && pts[j].t <= t {
			if pts[j].y > best {
				best = pts[j].y
			}
			j++
		}
		out[i] = best
	}
	return out
}

// TimeToReach returns the earliest virtual time at which the running best
// reached the given level (ok=false if never).
func (h *History) TimeToReach(level float64) (float64, bool) {
	type pt struct{ t, y float64 }
	pts := make([]pt, len(h.Records))
	for i, r := range h.Records {
		pts[i] = pt{r.End, r.Y}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].t < pts[b].t })
	for _, p := range pts {
		if p.y >= level {
			return p.t, true
		}
	}
	return 0, false
}

// IsAsync reports whether the algorithm dispatches asynchronously.
func (a Algorithm) IsAsync() bool { return a == AlgoEasyBO || a == AlgoEasyBOA }

// IsBatch reports whether the algorithm uses parallel workers.
func (a Algorithm) IsBatch() bool {
	switch a {
	case AlgoPBO, AlgoPHCBO, AlgoEasyBOS, AlgoEasyBOSP, AlgoEasyBOA, AlgoEasyBO, AlgoTS:
		return true
	}
	return false
}

// Label renders the table row label used in the paper ("pBO-5", "EasyBO-15",
// plain names for sequential rows).
func (a Algorithm) Label(batch int) string {
	if a == AlgoEasyBOSeq {
		return "EasyBO"
	}
	if !a.IsBatch() || batch <= 1 {
		return string(a)
	}
	return fmt.Sprintf("%s-%d", a, batch)
}
