package bo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"easybo/internal/core"
	"easybo/internal/objective"
	"easybo/internal/optimize"
	"easybo/internal/sched"
	"easybo/internal/stats"
)

// Run executes one optimization run of the configured algorithm on the
// problem, entirely in virtual time, and returns its history. Runs are
// deterministic given Config.Seed.
func Run(p *objective.Problem, cfg Config) (*History, error) {
	if p == nil {
		return nil, errors.New("bo: nil problem")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults(p.Dim())
	rng := rand.New(rand.NewSource(cfg.Seed))

	switch cfg.Algo {
	case AlgoDE:
		return runDE(p, cfg, rng)
	case AlgoRandom:
		return runRandom(p, cfg, rng)
	case AlgoEI, AlgoLCB, AlgoEasyBOSeq, AlgoPortfolio:
		cfg.BatchSize = 1
		return runSync(p, cfg, rng)
	case AlgoPBO, AlgoPHCBO, AlgoEasyBOS, AlgoEasyBOSP, AlgoTS:
		return runSync(p, cfg, rng)
	case AlgoEasyBOA, AlgoEasyBO:
		return runAsync(p, cfg, rng)
	default:
		return nil, fmt.Errorf("bo: unknown algorithm %q", cfg.Algo)
	}
}

// initialDesign draws the paper's random initial design (LHS over the box).
func initialDesign(p *objective.Problem, n int, rng *rand.Rand) [][]float64 {
	d := p.Dim()
	unit := stats.LatinHypercube(rng, n, d)
	pts := make([][]float64, n)
	for i, u := range unit {
		x := make([]float64, d)
		for j := range x {
			x[j] = p.Lo[j] + u[j]*(p.Hi[j]-p.Lo[j])
		}
		pts[i] = x
	}
	return pts
}

func (c Config) acqOpts(dim int) optimize.MaximizeOptions {
	o := optimize.MaximizeOptions{Candidates: c.AcqCandidates, Refine: c.AcqRefine}
	if o.Refine == 0 {
		o.Refine = 2
	}
	_ = dim
	return o
}

// selectorFor builds the batch selector for the sync/sequential algorithms.
func (c Config) selectorFor(dim int) (batchSelector, error) {
	opts := c.acqOpts(dim)
	switch c.Algo {
	case AlgoEI:
		return eiSelector{xi: c.XiEI, opts: opts}, nil
	case AlgoLCB:
		return lcbSelector{kappa: c.KappaLCB, opts: opts}, nil
	case AlgoPBO:
		return pboSelector{opts: opts}, nil
	case AlgoPHCBO:
		return newPHCBOSelector(c.NHC, c.HCRadius, opts), nil
	case AlgoEasyBOSeq, AlgoEasyBOS:
		return easySelector{&core.Proposer{Lambda: c.Lambda, Penalize: false, MaxOpts: opts}}, nil
	case AlgoEasyBOSP:
		return easySelector{&core.Proposer{Lambda: c.Lambda, Penalize: true, MaxOpts: opts}}, nil
	case AlgoTS:
		return tsSelector{opts: opts}, nil
	case AlgoPortfolio:
		return newPortfolioSelector(c.XiEI, c.KappaLCB, opts), nil
	default:
		return nil, fmt.Errorf("bo: %q is not a synchronous algorithm", c.Algo)
	}
}

// runSync implements the synchronous (and sequential, B=1) drivers: fit,
// select a batch, evaluate it in parallel, wait for the whole batch. Failed
// evaluations (NaN objectives) are handled per cfg.Failure like the async
// drivers: a skipped failure consumes budget without reaching the
// surrogate, a resubmitted one re-runs inside its batch barrier.
func runSync(p *objective.Problem, cfg Config, rng *rand.Rand) (*History, error) {
	sel, err := cfg.selectorFor(p.Dim())
	if err != nil {
		return nil, err
	}
	ex := sched.NewVirtual(cfg.BatchSize, p.EvalWithCost)
	mm, err := newModelManager(p.Lo, p.Hi, rng, cfg)
	if err != nil {
		return nil, err
	}
	fh := core.NewFailureHandler(cfg.Failure, cfg.MaxFailures, cfg.MaxEvals)

	var recs, failed []sched.Result
	var obsX [][]float64
	var obsY []float64
	completed := 0
	best := 0.0
	haveBest := false

	evaluateBatch := func(batch [][]float64) error {
		for _, x := range batch {
			if err := ex.Launch(x); err != nil {
				return err
			}
		}
		for pending := len(batch); pending > 0; {
			if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
				return fmt.Errorf("bo: cancelled after %d of %d evaluations: %w", completed, cfg.MaxEvals, cfg.Ctx.Err())
			}
			r, ok := ex.Wait()
			if !ok {
				return errors.New("bo: executor drained unexpectedly")
			}
			if r.Err != nil {
				failed = append(failed, r)
				action, ferr := fh.Handle(r)
				switch action {
				case core.ActionSkip:
					completed++ // the failure consumed one budget slot
					pending--
				case core.ActionResubmit:
					if err := ex.Launch(r.X); err != nil {
						return fmt.Errorf("bo: resubmit of failed evaluation %d: %w", r.ID, err)
					}
				default: // core.ActionAbort
					return fmt.Errorf("bo: %w", ferr)
				}
				continue
			}
			completed++
			pending--
			recs = append(recs, r)
			obsX = append(obsX, r.X)
			obsY = append(obsY, r.Y)
			if !haveBest || r.Y > best {
				best, haveBest = r.Y, true
			}
		}
		return nil
	}

	// Initial design in batches of B.
	init := initialDesign(p, cfg.InitPoints, rng)
	for i := 0; i < len(init); i += cfg.BatchSize {
		end := i + cfg.BatchSize
		if end > len(init) {
			end = len(init)
		}
		if err := evaluateBatch(init[i:end]); err != nil {
			return nil, err
		}
	}

	for completed < cfg.MaxEvals {
		b := cfg.BatchSize
		if rem := cfg.MaxEvals - completed; b > rem {
			b = rem
		}
		if len(obsY) == 0 {
			return nil, errors.New("bo: no successful observation to fit a surrogate on")
		}
		m, err := mm.Fit(obsX, obsY)
		if err != nil {
			return nil, err
		}
		batch, err := sel.SelectBatch(m, b, p.Lo, p.Hi, best, rng)
		if err != nil {
			return nil, err
		}
		if err := evaluateBatch(batch); err != nil {
			return nil, err
		}
	}
	return newHistory(cfg.Algo, cfg.BatchSize, recs, failed), nil
}

// runAsync implements EasyBO-A and full EasyBO through core.AsyncLoop
// (Algorithm 1). Failed evaluations (NaN objective values) are handled per
// cfg.Failure and recorded in History.Failed; only successful completions
// reach the surrogate and History.Records.
func runAsync(p *objective.Problem, cfg Config, rng *rand.Rand) (*History, error) {
	ex := sched.NewVirtual(cfg.BatchSize, p.EvalWithCost)
	mm, err := newModelManager(p.Lo, p.Hi, rng, cfg)
	if err != nil {
		return nil, err
	}
	proposer := &core.Proposer{
		Lambda:   cfg.Lambda,
		Penalize: cfg.Algo == AlgoEasyBO,
		MaxOpts:  cfg.acqOpts(p.Dim()),
	}
	var recs, failed []sched.Result
	err = core.AsyncLoop(ex, core.AsyncConfig{
		MaxEvals: cfg.MaxEvals,
		Init:     initialDesign(p, cfg.InitPoints, rng),
		Lo:       p.Lo, Hi: p.Hi,
		Fit:      mm.Fit,
		Proposer: proposer,
		Rng:      rng,
		OnResult: func(r sched.Result) { recs = append(recs, r) },

		Ctx:         cfg.Ctx,
		Failure:     cfg.Failure,
		MaxFailures: cfg.MaxFailures,
		OnFailure:   func(r sched.Result) { failed = append(failed, r) },
	})
	if err != nil {
		return nil, err
	}
	return newHistory(cfg.Algo, cfg.BatchSize, recs, failed), nil
}

// runDE runs the paper's differential-evolution baseline. DE evaluates
// sequentially on one worker, exactly as the baseline's huge time columns
// in Tables I/II assume. NaN objective values follow the shared failure
// contract: they abort under FailAbort, and otherwise rank last in DE's
// selection without ever entering Records (DE cannot resubmit — the same
// point would fail identically — so FailResubmit degrades to FailSkip).
func runDE(p *objective.Problem, cfg Config, rng *rand.Rand) (*History, error) {
	fh := core.NewFailureHandler(cfg.Failure, cfg.MaxFailures, cfg.MaxEvals)
	var recs, failed []sched.Result
	now := 0.0
	var abortErr error
	wrapped := func(x []float64) float64 {
		if abortErr != nil {
			return math.Inf(-1) // aborted: starve DE without touching the objective
		}
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			abortErr = fmt.Errorf("bo: cancelled after %d of %d evaluations: %w",
				len(recs)+len(failed), cfg.MaxEvals, cfg.Ctx.Err())
			return math.Inf(-1)
		}
		y := p.Eval(x)
		cost := 1.0
		if p.Cost != nil {
			cost = p.Cost(x)
		}
		r := sched.Result{
			ID: len(recs) + len(failed), X: append([]float64(nil), x...), Y: y,
			Start: now, End: now + cost, Attempts: 1,
		}
		now += cost
		if math.IsNaN(y) {
			r.Err = sched.ErrNaN
			failed = append(failed, r)
			if action, ferr := fh.Handle(r); action == core.ActionAbort {
				abortErr = fmt.Errorf("bo: %w", ferr)
			}
			return math.Inf(-1) // failed designs rank last in selection
		}
		recs = append(recs, r)
		return y
	}
	optimize.DE(wrapped, p.Lo, p.Hi, rng,
		optimize.DEOptions{PopSize: cfg.DEPop, MaxEvals: cfg.MaxEvals}, nil)
	if abortErr != nil {
		return nil, abortErr
	}
	return newHistory(AlgoDE, 1, recs, failed), nil
}

// runRandom is uniform random search on B parallel workers (asynchronous),
// a sanity baseline for the harness and tests. It shares the failure policy
// of the other drivers.
func runRandom(p *objective.Problem, cfg Config, rng *rand.Rand) (*History, error) {
	ex := sched.NewVirtual(cfg.BatchSize, p.EvalWithCost)
	fh := core.NewFailureHandler(cfg.Failure, cfg.MaxFailures, cfg.MaxEvals)
	d := p.Dim()
	draw := func() []float64 {
		x := make([]float64, d)
		for j := range x {
			x[j] = p.Lo[j] + rng.Float64()*(p.Hi[j]-p.Lo[j])
		}
		return x
	}
	var recs, failed []sched.Result
	launched, completed := 0, 0
	for launched < cfg.MaxEvals && ex.Idle() > 0 {
		if err := ex.Launch(draw()); err != nil {
			return nil, err
		}
		launched++
	}
	for completed < cfg.MaxEvals {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return nil, fmt.Errorf("bo: cancelled after %d of %d evaluations: %w", completed, cfg.MaxEvals, cfg.Ctx.Err())
		}
		r, ok := ex.Wait()
		if !ok {
			return nil, errors.New("bo: executor drained unexpectedly")
		}
		if r.Err != nil {
			failed = append(failed, r)
			action, ferr := fh.Handle(r)
			switch action {
			case core.ActionSkip:
				completed++
			case core.ActionResubmit:
				if err := ex.Launch(r.X); err != nil {
					return nil, fmt.Errorf("bo: resubmit of failed evaluation %d: %w", r.ID, err)
				}
				continue
			default: // core.ActionAbort
				return nil, fmt.Errorf("bo: %w", ferr)
			}
		} else {
			completed++
			recs = append(recs, r)
		}
		if launched < cfg.MaxEvals {
			if err := ex.Launch(draw()); err != nil {
				return nil, err
			}
			launched++
		}
	}
	return newHistory(AlgoRandom, cfg.BatchSize, recs, failed), nil
}
