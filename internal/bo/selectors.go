package bo

import (
	"fmt"
	"math/rand"

	"easybo/internal/acq"
	"easybo/internal/core"
	"easybo/internal/optimize"
	"easybo/internal/surrogate"
)

// batchSelector picks the next batch of query points for the synchronous
// and sequential drivers. bestRaw is the incumbent objective value.
type batchSelector interface {
	SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, bestRaw float64, rng *rand.Rand) ([][]float64, error)
}

// maximizeAcq maximizes an acquisition over the box on the model's
// standardized view, fanning the multistart out across goroutines — each
// worker owns an allocation-free predictor over the shared posterior.
func maximizeAcq(a acq.Func, m surrogate.Surrogate, lo, hi []float64, rng *rand.Rand, opts optimize.MaximizeOptions) []float64 {
	x, _ := optimize.MaximizeParallel(func() optimize.Objective {
		s := m.StandardizedPredictor()
		return func(q []float64) float64 { return a.Value(s, q) }
	}, lo, hi, rng, opts)
	return x
}

// eiSelector is sequential expected improvement.
type eiSelector struct {
	xi   float64
	opts optimize.MaximizeOptions
}

func (s eiSelector) SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, bestRaw float64, rng *rand.Rand) ([][]float64, error) {
	out := make([][]float64, 0, b)
	a := acq.EI{Best: m.StandardizeY(bestRaw), Xi: s.xi}
	for i := 0; i < b; i++ {
		out = append(out, maximizeAcq(a, m, lo, hi, rng, s.opts))
	}
	return out, nil
}

// lcbSelector is the sequential confidence-bound strategy.
type lcbSelector struct {
	kappa float64
	opts  optimize.MaximizeOptions
}

func (s lcbSelector) SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, _ float64, rng *rand.Rand) ([][]float64, error) {
	out := make([][]float64, 0, b)
	a := acq.LCB{Kappa: s.kappa}
	for i := 0; i < b; i++ {
		out = append(out, maximizeAcq(a, m, lo, hi, rng, s.opts))
	}
	return out, nil
}

// pboSelector implements pBO (Eq. 4): one weighted acquisition per fixed
// ladder weight w_i = (i-1)/(B-1).
type pboSelector struct {
	opts optimize.MaximizeOptions
}

func (s pboSelector) SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, _ float64, rng *rand.Rand) ([][]float64, error) {
	ws := acq.PBOWeights(b)
	out := make([][]float64, 0, b)
	for _, w := range ws {
		out = append(out, maximizeAcq(acq.Weighted{W: w}, m, lo, hi, rng, s.opts))
	}
	return out, nil
}

// phcboSelector implements pHCBO (Eq. 5-6): pBO penalized around the 5 most
// recent queries of the same weight index, in normalized coordinates.
type phcboSelector struct {
	nhc    float64
	radius float64
	opts   optimize.MaximizeOptions
	recent map[int][][]float64 // weight index -> recent normalized queries
}

func newPHCBOSelector(nhc, radius float64, opts optimize.MaximizeOptions) *phcboSelector {
	return &phcboSelector{nhc: nhc, radius: radius, opts: opts, recent: map[int][][]float64{}}
}

// normalize maps x into the unit cube of [lo, hi].
func normalize(x, lo, hi []float64) []float64 {
	return normalizeInto(make([]float64, len(x)), x, lo, hi)
}

// normalizeInto is normalize writing into a caller-provided buffer.
func normalizeInto(out, x, lo, hi []float64) []float64 {
	for i := range x {
		span := hi[i] - lo[i]
		if span <= 0 {
			span = 1
		}
		out[i] = (x[i] - lo[i]) / span
	}
	return out
}

func (s *phcboSelector) SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, _ float64, rng *rand.Rand) ([][]float64, error) {
	ws := acq.PBOWeights(b)
	out := make([][]float64, 0, b)
	for i, w := range ws {
		base := acq.Weighted{W: w}
		pen := acq.HCPenalty{NHC: s.nhc, D: s.radius, Recent: s.recent[i]}
		x, _ := optimize.MaximizeParallel(func() optimize.Objective {
			std := m.StandardizedPredictor()
			nbuf := make([]float64, len(lo))
			return func(q []float64) float64 {
				return base.Value(std, q) - pen.Value(normalizeInto(nbuf, q, lo, hi))
			}
		}, lo, hi, rng, s.opts)
		out = append(out, x)
		// Record for the next iteration: newest first, keep 5.
		r := append([][]float64{normalize(x, lo, hi)}, s.recent[i]...)
		if len(r) > 5 {
			r = r[:5]
		}
		s.recent[i] = r
	}
	return out, nil
}

// easySelector adapts core.Proposer to the batch-selector interface
// (EasyBO-seq, EasyBO-S, EasyBO-SP).
type easySelector struct {
	proposer *core.Proposer
}

func (s easySelector) SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, _ float64, rng *rand.Rand) ([][]float64, error) {
	return s.proposer.ProposeBatch(m, b, lo, hi, rng)
}

// tsSelector is (parallel) Thompson sampling: each batch slot maximizes an
// independent random-Fourier-feature draw from the posterior, which keeps
// batches diverse without any explicit penalty.
type tsSelector struct {
	features int
	opts     optimize.MaximizeOptions
}

func (s tsSelector) SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, _ float64, rng *rand.Rand) ([][]float64, error) {
	nf := s.features
	if nf <= 0 {
		nf = 400
	}
	sampler, ok := m.(surrogate.Sampler)
	if !ok {
		return nil, fmt.Errorf("bo: surrogate backend %T does not support Thompson sampling", m)
	}
	out := make([][]float64, 0, b)
	for i := 0; i < b; i++ {
		sample, err := sampler.SampleRFF(rng, nf)
		if err != nil {
			return nil, err
		}
		// The RFF draw is a pure function of fixed weights, so all workers
		// may share it.
		x, _ := optimize.MaximizeParallel(func() optimize.Objective { return sample },
			lo, hi, rng, s.opts)
		out = append(out, x)
	}
	return out, nil
}

// portfolioSelector is sequential GP-Hedge over {EI, PI, UCB}: every round
// each strategy nominates a point, the hedge samples one nomination in
// proportion to exponential weights, and all strategies are rewarded by the
// refreshed posterior mean at their past nominations.
type portfolioSelector struct {
	hedge *acq.Portfolio
	xi    float64
	kappa float64
	opts  optimize.MaximizeOptions
}

func newPortfolioSelector(xi, kappa float64, opts optimize.MaximizeOptions) *portfolioSelector {
	return &portfolioSelector{hedge: acq.NewPortfolio(3, 1.0), xi: xi, kappa: kappa, opts: opts}
}

func (s *portfolioSelector) SelectBatch(m surrogate.Surrogate, b int, lo, hi []float64, bestRaw float64, rng *rand.Rand) ([][]float64, error) {
	std := m.StandardizedPredictor()
	s.hedge.Update(std) // reward last round's nominations under the new posterior
	best := m.StandardizeY(bestRaw)
	strategies := []acq.Func{
		acq.EI{Best: best, Xi: s.xi},
		acq.PI{Best: best, Xi: s.xi},
		acq.UCB{Kappa: s.kappa},
	}
	choices := make([][]float64, len(strategies))
	for i, a := range strategies {
		choices[i] = maximizeAcq(a, m, lo, hi, rng, s.opts)
	}
	s.hedge.RecordChoices(choices)
	out := make([][]float64, 0, b)
	for i := 0; i < b; i++ {
		out = append(out, choices[s.hedge.Pick(rng)])
	}
	return out, nil
}
