package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"easybo/internal/acq"
	"easybo/internal/optimize"
	"easybo/internal/stats"
	"easybo/internal/surrogate"
)

// ConstrainedProposer extends EasyBO to black-box inequality constraints
// c_j(x) ≤ 0 — the extension the paper defers to future work (§II-A). Each
// constraint gets its own GP surrogate; candidates are scored by the EasyBO
// weighted acquisition multiplied by the probability of feasibility
// (Gardner et al., 2014), with the acquisition shifted to be non-negative
// over the candidate sweep so the feasibility weighting cannot invert its
// ordering. Busy points are hallucinated into the objective and every
// constraint surrogate alike.
type ConstrainedProposer struct {
	Lambda     float64
	Penalize   bool
	Candidates int // candidate sweep size (default 80·d, min 300)
	Refine     int // Nelder-Mead refinements (default 2)
}

// ProposeConstrained returns the next query point given the objective
// surrogate, one surrogate per constraint (trained on the same inputs), and
// the busy set. When no feasible region is known yet (anyFeasible false),
// it maximizes the joint probability of feasibility instead.
func (p *ConstrainedProposer) ProposeConstrained(
	obj surrogate.Surrogate, cons []surrogate.Surrogate, busy [][]float64,
	lo, hi []float64, anyFeasible bool, rng *rand.Rand,
) ([]float64, error) {
	if obj == nil {
		return nil, errors.New("core: nil objective surrogate")
	}
	objView := obj
	consView := make([]surrogate.Surrogate, len(cons))
	copy(consView, cons)
	if p.Penalize && len(busy) > 0 {
		var err error
		objView, err = obj.WithPseudo(busy)
		if err != nil {
			return nil, fmt.Errorf("core: objective hallucination: %w", err)
		}
		for j, cm := range cons {
			if consView[j], err = cm.WithPseudo(busy); err != nil {
				return nil, fmt.Errorf("core: constraint %d hallucination: %w", j, err)
			}
		}
	}

	d := len(lo)
	nCand := p.Candidates
	if nCand <= 0 {
		nCand = 80 * d
		if nCand < 300 {
			nCand = 300
		}
	}
	refine := p.Refine
	if refine <= 0 {
		refine = 2
	}

	// One reusable predictor per constraint: the candidate sweep and the
	// simplex refinements below run on this goroutine only.
	consPred := make([]surrogate.Predictor, len(consView))
	for j, cm := range consView {
		consPred[j] = cm.Predictor()
	}
	pof := func(x []float64) float64 {
		prod := 1.0
		for _, cp := range consPred {
			mu, sigma := cp.Predict(x)
			if sigma < 1e-12 {
				if mu > 0 {
					return 0
				}
				continue
			}
			prod *= stats.NormCDF(-mu / sigma)
		}
		return prod
	}

	w := acq.SampleWeight(rng, p.Lambda)
	base := acq.Weighted{W: w}
	std := objView.StandardizedPredictor()

	// Candidate sweep.
	unit := stats.LatinHypercube(rng, nCand, d)
	type cand struct {
		x     []float64
		alpha float64
		pof   float64
	}
	cands := make([]cand, nCand)
	alphaMin := 0.0
	for i, u := range unit {
		x := make([]float64, d)
		for j := range x {
			x[j] = lo[j] + u[j]*(hi[j]-lo[j])
		}
		a := base.Value(std, x)
		if i == 0 || a < alphaMin {
			alphaMin = a
		}
		cands[i] = cand{x: x, alpha: a, pof: pof(x)}
	}
	score := func(alpha, pf float64) float64 {
		if !anyFeasible {
			return pf // no feasible incumbent: chase feasibility first
		}
		return (alpha - alphaMin) * pf
	}
	sort.Slice(cands, func(a, b int) bool {
		return score(cands[a].alpha, cands[a].pof) > score(cands[b].alpha, cands[b].pof)
	})

	// Local refinement of the best candidates on the continuous score.
	f := func(x []float64) float64 {
		return score(base.Value(std, x), pof(x))
	}
	bestX := cands[0].x
	bestV := f(bestX)
	for i := 0; i < refine && i < len(cands); i++ {
		x, v := optimize.NelderMead(f, cands[i].x, lo, hi,
			optimize.NelderMeadOptions{MaxEvals: 40 * d})
		if v > bestV {
			bestX, bestV = x, v
		}
	}
	return append([]float64(nil), bestX...), nil
}
