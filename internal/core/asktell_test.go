package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"easybo/internal/sched"
)

func askTellFixture(t *testing.T, cfg AskTellConfig) *AskTell {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	if cfg.Init == nil {
		cfg.Init = [][]float64{{0.1, 0.2}, {0.8, 0.9}, {0.4, 0.5}}
	}
	if cfg.Lo == nil {
		cfg.Lo, cfg.Hi = []float64{0, 0}, []float64{1, 1}
	}
	if cfg.Fit == nil {
		_, lo, hi, fit := asyncFixture(rng)
		_, _ = lo, hi
		cfg.Fit = fit
	}
	if cfg.Proposer == nil {
		cfg.Proposer = &Proposer{Lambda: 6}
	}
	if cfg.Rng == nil {
		cfg.Rng = rng
	}
	at, err := NewAskTell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func mustSuggest(t *testing.T, at *AskTell) Proposal {
	t.Helper()
	p, ok, err := at.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Suggest returned no proposal")
	}
	return p
}

func TestAskTellInitialDesignOrder(t *testing.T) {
	init := [][]float64{{0.1, 0.2}, {0.8, 0.9}, {0.4, 0.5}}
	at := askTellFixture(t, AskTellConfig{MaxEvals: 10, Init: init})
	for i := range init {
		p := mustSuggest(t, at)
		if !p.Init {
			t.Fatalf("proposal %d not marked Init", i)
		}
		if !equalPoints(p.X, init[i]) {
			t.Fatalf("init proposal %d = %v, want %v", i, p.X, init[i])
		}
	}
	if at.InInitialDesign() {
		t.Fatal("initial design should be exhausted")
	}
	if at.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", at.Pending())
	}
}

func TestAskTellSurrogateNeedsObservation(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{MaxEvals: 10})
	for i := 0; i < 3; i++ {
		mustSuggest(t, at)
	}
	// All init points pending, none observed: a surrogate proposal is
	// impossible, but the machine must stay alive.
	if _, _, err := at.Suggest(); err == nil || !strings.Contains(err.Error(), "no successful observation") {
		t.Fatalf("want no-observation error, got %v", err)
	}
	if err := at.Observe([]float64{0.1, 0.2}, -1.0, nil); err != nil {
		t.Fatal(err)
	}
	if err := at.Observe([]float64{0.8, 0.9}, -2.0, nil); err != nil {
		t.Fatal(err)
	}
	p := mustSuggest(t, at)
	if p.Init || p.Resubmit {
		t.Fatalf("expected surrogate proposal, got %+v", p)
	}
	if x, y := at.Best(); y != -1.0 || !equalPoints(x, []float64{0.1, 0.2}) {
		t.Fatalf("Best = %v %v", x, y)
	}
}

func TestAskTellBudgetExhaustion(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{MaxEvals: 3})
	for i := 0; i < 3; i++ {
		mustSuggest(t, at)
	}
	if _, ok, err := at.Suggest(); ok || err != nil {
		t.Fatalf("budget exhausted: ok=%v err=%v", ok, err)
	}
	if at.Done() {
		t.Fatal("not done before outcomes arrive")
	}
	for i, x := range [][]float64{{0.1, 0.2}, {0.8, 0.9}, {0.4, 0.5}} {
		if err := at.Observe(x, float64(-i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !at.Done() {
		t.Fatal("machine must be done after MaxEvals outcomes")
	}
	if at.Pending() != 0 {
		t.Fatalf("pending = %d after full drain", at.Pending())
	}
}

func TestAskTellResubmitPrecedesEverything(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{MaxEvals: 10, Failure: FailResubmit})
	p0 := mustSuggest(t, at)
	failed := sched.Result{ID: 41, X: p0.X, Y: math.NaN(), Err: sched.ErrNaN}
	if err := at.ObserveResult(failed); err != nil {
		t.Fatal(err)
	}
	// The resubmission must outrank the remaining initial design.
	p := mustSuggest(t, at)
	if !p.Resubmit || p.FailedID != 41 {
		t.Fatalf("want resubmit of failed id 41, got %+v", p)
	}
	if !equalPoints(p.X, p0.X) {
		t.Fatalf("resubmitted %v, want %v", p.X, p0.X)
	}
	if at.Launched() != 1 {
		t.Fatalf("resubmission consumed budget: launched = %d", at.Launched())
	}
	if at.Failures() != 1 {
		t.Fatalf("failures = %d", at.Failures())
	}
}

func TestAskTellSkipConsumesBudget(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{MaxEvals: 3, Failure: FailSkip})
	for i := 0; i < 3; i++ {
		p := mustSuggest(t, at)
		if err := at.Observe(p.X, math.NaN(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !at.Done() {
		t.Fatal("3 skipped failures must exhaust a budget of 3")
	}
	if at.Observations() != 0 {
		t.Fatalf("observations = %d, want 0", at.Observations())
	}
}

func TestAskTellAbortIsSticky(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{MaxEvals: 10})
	p := mustSuggest(t, at)
	err := at.Observe(p.X, 0, errors.New("simulator exploded"))
	if err == nil || !strings.Contains(err.Error(), "simulator exploded") {
		t.Fatalf("abort error = %v", err)
	}
	if _, _, err2 := at.Suggest(); !errors.Is(err2, at.Err()) || err2 == nil {
		t.Fatalf("dead machine must keep returning its abort error, got %v", err2)
	}
	if err3 := at.Observe(p.X, 1, nil); err3 == nil {
		t.Fatal("dead machine accepted an observation")
	}
}

func TestAskTellForget(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{MaxEvals: 10})
	p := mustSuggest(t, at)
	mustSuggest(t, at)
	if !at.Forget(p.X) {
		t.Fatal("Forget must find the pending point")
	}
	if at.Forget(p.X) {
		t.Fatal("second Forget of the same point must report false")
	}
	if at.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", at.Pending())
	}
}

func TestAskTellRandomFallback(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{Init: [][]float64{{0.5, 0.5}}, MinFitObs: 2, RandomFallback: true})
	mustSuggest(t, at)
	// Unbounded machine, no observations yet: falls back to random draws
	// inside the box instead of erroring.
	for i := 0; i < 4; i++ {
		p := mustSuggest(t, at)
		for j, v := range p.X {
			if v < 0 || v > 1 {
				t.Fatalf("random fallback left the box: x[%d]=%v", j, v)
			}
		}
	}
	if at.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", at.Pending())
	}
}

func TestAskTellUnsuggestedObservationEnriches(t *testing.T) {
	at := askTellFixture(t, AskTellConfig{MaxEvals: 10})
	if err := at.Observe([]float64{0.3, 0.3}, -0.5, nil); err != nil {
		t.Fatal(err)
	}
	if at.Observations() != 1 || at.Pending() != 0 {
		t.Fatalf("obs=%d pending=%d", at.Observations(), at.Pending())
	}
}
