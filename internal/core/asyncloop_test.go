package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"easybo/internal/gp"
	"easybo/internal/sched"
	"easybo/internal/surrogate"
)

// faultyVirtual builds a virtual executor whose objective fails (NaN) on a
// caller-controlled predicate, with position-dependent costs so completions
// interleave out of order.
func faultyVirtual(b int, fail func(x []float64) bool) *sched.VirtualExecutor {
	return sched.NewVirtual(b, func(x []float64) (float64, float64) {
		cost := 1 + 3*x[0]
		if fail(x) {
			return math.NaN(), cost
		}
		return -(x[0]-0.7)*(x[0]-0.7) - (x[1]-0.2)*(x[1]-0.2), cost
	})
}

func asyncFixture(rng *rand.Rand) ([][]float64, []float64, []float64, Fitter) {
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	var init [][]float64
	for i := 0; i < 8; i++ {
		init = append(init, []float64{rng.Float64(), rng.Float64()})
	}
	fit := func(xs [][]float64, ys []float64) (surrogate.Surrogate, error) {
		for _, y := range ys {
			if math.IsNaN(y) {
				panic("core: NaN observation reached the surrogate")
			}
		}
		m, err := gp.Train(xs, ys, lo, hi, rand.New(rand.NewSource(9)), &gp.TrainOptions{Fit: &gp.FitOptions{Iters: 10}})
		if err != nil {
			return nil, err
		}
		return surrogate.NewExact(m), nil
	}
	return init, lo, hi, fit
}

func TestAsyncLoopAbortsOnFailureByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init, lo, hi, fit := asyncFixture(rng)
	// Fail the third initial-design point.
	ex := faultyVirtual(3, func(x []float64) bool { return x[0] == init[2][0] })
	err := AsyncLoop(ex, AsyncConfig{
		MaxEvals: 20, Init: init, Lo: lo, Hi: hi,
		Fit: fit, Proposer: &Proposer{Lambda: 6}, Rng: rng,
	})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("default policy must abort on failure, got %v", err)
	}
}

func TestAsyncLoopSkipsFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init, lo, hi, fit := asyncFixture(rng)
	failSet := map[float64]bool{init[1][0]: true, init[4][0]: true}
	ex := faultyVirtual(3, func(x []float64) bool { return failSet[x[0]] })
	var ok, failed []sched.Result
	err := AsyncLoop(ex, AsyncConfig{
		MaxEvals: 20, Init: init, Lo: lo, Hi: hi,
		Fit: fit, Proposer: &Proposer{Lambda: 6, Penalize: true}, Rng: rng,
		Failure:   FailSkip,
		OnResult:  func(r sched.Result) { ok = append(ok, r) },
		OnFailure: func(r sched.Result) { failed = append(failed, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 2 {
		t.Fatalf("failures = %d, want 2", len(failed))
	}
	// Skipped failures consume budget: successes + failures == MaxEvals.
	if len(ok)+len(failed) != 20 {
		t.Fatalf("ok %d + failed %d != 20", len(ok), len(failed))
	}
	for _, r := range ok {
		if r.Err != nil || math.IsNaN(r.Y) {
			t.Fatalf("failed result delivered as success: %+v", r)
		}
	}
	for _, r := range failed {
		if r.Err == nil {
			t.Fatalf("OnFailure saw a healthy result: %+v", r)
		}
	}
}

func TestAsyncLoopResubmitsFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init, lo, hi, fit := asyncFixture(rng)
	// Transient fault: each distinct point fails its first attempt only.
	attempts := map[float64]int{}
	ex := faultyVirtual(3, func(x []float64) bool {
		attempts[x[0]]++
		return attempts[x[0]] == 1 && (x[0] == init[0][0] || x[0] == init[5][0])
	})
	var ok, failed []sched.Result
	err := AsyncLoop(ex, AsyncConfig{
		MaxEvals: 20, Init: init, Lo: lo, Hi: hi,
		Fit: fit, Proposer: &Proposer{Lambda: 6, Penalize: true}, Rng: rng,
		Failure:   FailResubmit,
		OnResult:  func(r sched.Result) { ok = append(ok, r) },
		OnFailure: func(r sched.Result) { failed = append(failed, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Resubmissions do not consume budget: exactly MaxEvals successes.
	if len(ok) != 20 {
		t.Fatalf("successes = %d, want 20", len(ok))
	}
	if len(failed) != 2 {
		t.Fatalf("failures = %d, want 2", len(failed))
	}
	// Both failed points were eventually observed.
	for _, f := range failed {
		found := false
		for _, r := range ok {
			if r.X[0] == f.X[0] && r.X[1] == f.X[1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("resubmitted point %v never completed", f.X)
		}
	}
}

func TestAsyncLoopMaxFailuresBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init, lo, hi, fit := asyncFixture(rng)
	// One poisoned point fails every attempt: resubmission can never succeed.
	ex := faultyVirtual(3, func(x []float64) bool { return x[0] == init[3][0] })
	err := AsyncLoop(ex, AsyncConfig{
		MaxEvals: 20, Init: init, Lo: lo, Hi: hi,
		Fit: fit, Proposer: &Proposer{Lambda: 6}, Rng: rng,
		Failure: FailResubmit, MaxFailures: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "exceed the limit") {
		t.Fatalf("permanently failing point must trip MaxFailures, got %v", err)
	}
}

func TestAsyncLoopCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init, lo, hi, fit := asyncFixture(rng)
	ex := faultyVirtual(3, func(x []float64) bool { return false })
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := AsyncLoop(ex, AsyncConfig{
		MaxEvals: 20, Init: init, Lo: lo, Hi: hi,
		Fit: fit, Proposer: &Proposer{Lambda: 6}, Rng: rng,
		Ctx: ctx,
		OnResult: func(r sched.Result) {
			n++
			if n == 5 {
				cancel()
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled loop must error, got %v", err)
	}
	if n != 5 {
		t.Fatalf("loop kept absorbing results after cancel: %d", n)
	}
}
