// Package core implements the EasyBO algorithm itself — the paper's primary
// contribution (§III):
//
//   - Proposer draws the randomized exploration weight w = κ/(κ+1) with
//     κ ~ U[0, λ] (Eq. 8) and maximizes the weighted acquisition
//     α(x,w) = (1−w)·µ(x) + w·σ̂(x) over the design box, where σ̂ optionally
//     comes from a hallucinated surrogate that absorbs the busy points as
//     pseudo-observations (Eq. 9, §III-C).
//   - AsyncLoop is Algorithm 1: whenever a worker becomes idle, absorb the
//     newly finished observation, refresh the surrogate, hallucinate the
//     still-busy queries, and dispatch the maximizer of the acquisition.
//
// The synchronous EasyBO variants (EasyBO-S / EasyBO-SP evaluated in §IV)
// reuse Proposer through ProposeBatch.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"easybo/internal/acq"
	"easybo/internal/optimize"
	"easybo/internal/surrogate"
)

// Proposer selects EasyBO query points.
type Proposer struct {
	// Lambda is the κ upper bound of Eq. (8); the paper uses 6.0.
	Lambda float64
	// Penalize enables the hallucination penalization of Eq. (9) (σ̂ from a
	// surrogate refit with pseudo-observations at the busy points). Without
	// it the plain posterior deviation is used (EasyBO-S / EasyBO-A).
	Penalize bool
	// MaxOpts tunes the inner acquisition maximizer.
	MaxOpts optimize.MaximizeOptions
}

// Propose returns the next query point given the fitted surrogate, the busy
// set (points still under evaluation, raw coordinates), and the design box.
// It also reports the sampled weight for diagnostics. The hallucinated
// variant extends the surrogate incrementally (rank-append on the exact GP,
// rank-1 information updates on the feature backend), and the acquisition
// maximization fans its multistart out across goroutines, each with its own
// allocation-free predictor.
func (p *Proposer) Propose(m surrogate.Surrogate, busy [][]float64, lo, hi []float64, rng *rand.Rand) (x []float64, w float64, err error) {
	if m == nil {
		return nil, 0, errors.New("core: nil surrogate")
	}
	view := m
	if p.Penalize && len(busy) > 0 {
		view, err = m.WithPseudo(busy)
		if err != nil {
			return nil, 0, fmt.Errorf("core: hallucinated refit: %w", err)
		}
	}
	return p.proposeOn(view, lo, hi, rng)
}

// proposeOn maximizes the randomized-weight acquisition on an already
// hallucinated surrogate view.
func (p *Proposer) proposeOn(view surrogate.Surrogate, lo, hi []float64, rng *rand.Rand) (x []float64, w float64, err error) {
	w = acq.SampleWeight(rng, p.Lambda)
	a := acq.Weighted{W: w}
	x, _ = optimize.MaximizeParallel(func() optimize.Objective {
		s := view.StandardizedPredictor()
		return func(q []float64) float64 { return a.Value(s, q) }
	}, lo, hi, rng, p.MaxOpts)
	return x, w, nil
}

// ProposeBatch selects b points synchronously (EasyBO-S when Penalize is
// false, EasyBO-SP when true). With penalization each selected point is
// immediately hallucinated so that later selections in the same batch are
// pushed away from it — the in-batch diversity device of §III-C. The
// hallucinations accumulate on one incrementally extended view (each step
// appends a single row to the factor), so a batch costs O(b·n²) instead of
// the O(b·n³) of per-step refits.
func (p *Proposer) ProposeBatch(m surrogate.Surrogate, b int, lo, hi []float64, rng *rand.Rand) ([][]float64, error) {
	if b < 1 {
		return nil, errors.New("core: batch size must be >= 1")
	}
	if m == nil {
		return nil, errors.New("core: nil surrogate")
	}
	batch := make([][]float64, 0, b)
	view := m
	for i := 0; i < b; i++ {
		x, _, err := p.proposeOn(view, lo, hi, rng)
		if err != nil {
			return nil, err
		}
		batch = append(batch, x)
		if p.Penalize && i+1 < b {
			view, err = view.WithPseudo(batch[i : i+1])
			if err != nil {
				return nil, fmt.Errorf("core: hallucinated refit: %w", err)
			}
		}
	}
	return batch, nil
}
