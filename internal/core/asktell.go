package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"easybo/internal/sched"
)

// Proposal is one suggestion issued by the ask/tell state machine: a point
// the caller must evaluate and eventually feed back through Observe.
type Proposal struct {
	// ID is the suggestion sequence number, unique within one AskTell.
	ID int
	// X is the point to evaluate (the caller owns this copy).
	X []float64
	// Init reports whether the point came from the initial design.
	Init bool
	// Resubmit reports whether the point is a re-issue of a failed
	// evaluation under FailResubmit; FailedID is then the failed Result's ID.
	Resubmit bool
	FailedID int
}

// AskTellConfig configures an AskTell state machine.
type AskTellConfig struct {
	// MaxEvals bounds the total number of suggestions whose outcome counts
	// against the budget (initial design included). 0 means unbounded — the
	// machine keeps suggesting for as long as the caller keeps asking.
	MaxEvals int
	Init     [][]float64 // initial design points (required, raw coordinates)
	Lo, Hi   []float64   // design box
	Fit      Fitter      // surrogate refresher (required)
	Proposer *Proposer   // acquisition engine (required)
	Rng      *rand.Rand  // drives κ sampling and the inner maximizer

	OnResult func(sched.Result) // observes every successful completion in order (optional)
	// Failure selects the policy for failed evaluations (default FailAbort).
	Failure     FailurePolicy
	MaxFailures int                // bound on tolerated failures (0 = policy default)
	OnFailure   func(sched.Result) // observes every failed evaluation (optional)

	// MinFitObs is the minimum number of observations required before the
	// surrogate is fit (default 1). Only consulted when RandomFallback is
	// set: below the threshold (and past the initial design) Suggest returns
	// uniform random points instead of erroring, so a caller that asks
	// faster than it tells is never starved.
	MinFitObs      int
	RandomFallback bool
}

type pendingPoint struct {
	id int
	x  []float64
}

type resubmitPoint struct {
	x        []float64
	failedID int
}

// AskTell is the optimization loop of Algorithm 1 with control inverted: the
// caller owns the workers (goroutines, an executor, or remote simulators
// behind an HTTP API) and drives the machine through Suggest and Observe.
//
//   - Suggest returns the next point to evaluate. Every point suggested but
//     not yet observed stays in the pending set and is hallucinated into the
//     surrogate (paper §III-C) when the Proposer penalizes.
//   - Observe feeds one finished evaluation back — successful or failed, in
//     any order. Failures follow the configured FailurePolicy: they abort
//     the machine, consume budget silently, or queue the point for
//     re-suggestion.
//
// AsyncLoop and the public easybo.Loop are thin adapters over AskTell. An
// AskTell is not safe for concurrent use; serialize calls (the serve package
// does so with a per-session actor goroutine).
type AskTell struct {
	cfg AskTellConfig
	fh  *FailureHandler

	launched  int // budgeted suggestions issued (resubmits excluded)
	completed int // successful + skipped-failure outcomes absorbed
	nextID    int // proposal sequence
	tells     int // Observe calls, used to synthesize Result IDs

	obsX    [][]float64
	obsY    []float64
	pending []pendingPoint
	queue   []resubmitPoint

	bestX []float64
	bestY float64

	err error // sticky abort error; the machine is dead once set
}

// NewAskTell validates the configuration and returns a fresh state machine.
func NewAskTell(cfg AskTellConfig) (*AskTell, error) {
	switch {
	case cfg.Fit == nil:
		return nil, errors.New("core: AskTell requires a Fitter")
	case cfg.Proposer == nil:
		return nil, errors.New("core: AskTell requires a Proposer")
	case cfg.Rng == nil:
		return nil, errors.New("core: AskTell requires an rng")
	case len(cfg.Init) == 0:
		return nil, errors.New("core: AskTell requires an initial design")
	case cfg.MaxEvals > 0 && cfg.MaxEvals < len(cfg.Init):
		return nil, fmt.Errorf("core: MaxEvals %d smaller than initial design %d", cfg.MaxEvals, len(cfg.Init))
	case len(cfg.Lo) == 0 || len(cfg.Lo) != len(cfg.Hi):
		return nil, fmt.Errorf("core: invalid design box (lo %d, hi %d)", len(cfg.Lo), len(cfg.Hi))
	}
	if cfg.MinFitObs <= 0 {
		cfg.MinFitObs = 1
	}
	budget := cfg.MaxEvals
	if budget <= 0 {
		budget = int(^uint(0) >> 1)
	}
	return &AskTell{
		cfg:   cfg,
		fh:    NewFailureHandler(cfg.Failure, cfg.MaxFailures, budget),
		bestY: math.Inf(-1),
	}, nil
}

// issue registers x as pending and returns its proposal. Resubmitted points
// do not consume budget.
func (s *AskTell) issue(x []float64, init, resubmit bool, failedID int) Proposal {
	xc := append([]float64(nil), x...)
	p := Proposal{ID: s.nextID, X: append([]float64(nil), x...), Init: init, Resubmit: resubmit, FailedID: failedID}
	s.pending = append(s.pending, pendingPoint{id: s.nextID, x: xc})
	s.nextID++
	if !resubmit {
		s.launched++
	}
	return p
}

// Suggest returns the next point to evaluate. ok is false when no suggestion
// is available right now: the budget of MaxEvals suggestions is exhausted
// and no failed point awaits resubmission (the caller should keep Observing
// until Done). The order of precedence is exactly Algorithm 1's: queued
// resubmissions first, then the initial design, then the acquisition
// maximizer on the refreshed surrogate with all pending points hallucinated.
func (s *AskTell) Suggest() (p Proposal, ok bool, err error) {
	if s.err != nil {
		return Proposal{}, false, s.err
	}
	if len(s.queue) > 0 {
		r := s.queue[0]
		s.queue = s.queue[1:]
		return s.issue(r.x, false, true, r.failedID), true, nil
	}
	if s.cfg.MaxEvals > 0 && s.launched >= s.cfg.MaxEvals {
		return Proposal{}, false, nil
	}
	if s.launched < len(s.cfg.Init) {
		return s.issue(s.cfg.Init[s.launched], true, false, 0), true, nil
	}
	if s.cfg.RandomFallback && len(s.obsY) < s.cfg.MinFitObs {
		// Caller suggested more than it observed: uniform random draw.
		x := make([]float64, len(s.cfg.Lo))
		for j := range x {
			x[j] = s.cfg.Lo[j] + s.cfg.Rng.Float64()*(s.cfg.Hi[j]-s.cfg.Lo[j])
		}
		return s.issue(x, false, false, 0), true, nil
	}
	if len(s.obsY) == 0 {
		return Proposal{}, false, fmt.Errorf("core: no successful observation after %d launches; cannot fit a surrogate", s.launched)
	}
	m, err := s.cfg.Fit(s.obsX, s.obsY)
	if err != nil {
		return Proposal{}, false, fmt.Errorf("core: surrogate refresh: %w", err)
	}
	x, _, err := s.cfg.Proposer.Propose(m, s.PendingPoints(), s.cfg.Lo, s.cfg.Hi, s.cfg.Rng)
	if err != nil {
		return Proposal{}, false, err
	}
	return s.issue(x, false, false, 0), true, nil
}

// ObserveResult feeds one finished evaluation back into the machine. The
// point is matched against the pending set by coordinates and removed;
// observing a point that was never suggested is allowed and simply enriches
// the surrogate. A failed result (Err != nil) follows the failure policy:
// ActionAbort returns the abort error and kills the machine, ActionSkip
// consumes one budget slot, ActionResubmit queues the point so the next
// Suggest re-issues it without consuming extra budget.
func (s *AskTell) ObserveResult(r sched.Result) error {
	if s.err != nil {
		return s.err
	}
	s.tells++
	s.forget(r.X)
	if r.Err != nil {
		if s.cfg.OnFailure != nil {
			s.cfg.OnFailure(r)
		}
		action, ferr := s.fh.Handle(r)
		switch action {
		case ActionSkip:
			s.completed++ // the failure consumed one budget slot
		case ActionResubmit:
			s.queue = append(s.queue, resubmitPoint{x: append([]float64(nil), r.X...), failedID: r.ID})
		default: // ActionAbort
			s.err = fmt.Errorf("core: %w", ferr)
			return s.err
		}
		return nil
	}
	s.completed++
	xc := append([]float64(nil), r.X...)
	s.obsX = append(s.obsX, xc)
	s.obsY = append(s.obsY, r.Y)
	if r.Y > s.bestY {
		s.bestY = r.Y
		s.bestX = xc
	}
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(r)
	}
	return nil
}

// Observe is the plain ask/tell form of ObserveResult for callers without an
// executor: evalErr non-nil (or a NaN y) marks the evaluation failed.
func (s *AskTell) Observe(x []float64, y float64, evalErr error) error {
	if evalErr == nil && math.IsNaN(y) {
		evalErr = sched.ErrNaN
	}
	return s.ObserveResult(sched.Result{ID: s.tells, X: x, Y: y, Err: evalErr, Attempts: 1})
}

// Forget removes a suggested-but-unobserved point from the pending set
// without recording an outcome, so it stops being hallucinated. It reports
// whether the point was pending.
func (s *AskTell) Forget(x []float64) bool { return s.forget(x) }

func (s *AskTell) forget(x []float64) bool {
	for i, p := range s.pending {
		if equalPoints(p.x, x) {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return true
		}
	}
	return false
}

// Done reports whether the budget is exhausted: MaxEvals outcomes absorbed.
// An unbounded machine (MaxEvals 0) is never done.
func (s *AskTell) Done() bool {
	return s.cfg.MaxEvals > 0 && s.completed >= s.cfg.MaxEvals
}

// Err returns the sticky abort error, if the machine has died.
func (s *AskTell) Err() error { return s.err }

// InInitialDesign reports whether the next budgeted suggestion still comes
// from the initial design.
func (s *AskTell) InInitialDesign() bool { return s.launched < len(s.cfg.Init) }

// Launched returns the number of budgeted suggestions issued so far.
func (s *AskTell) Launched() int { return s.launched }

// Completed returns the number of budget-consuming outcomes absorbed so far
// (successes plus skipped failures; resubmitted failures excluded).
func (s *AskTell) Completed() int { return s.completed }

// Observations returns the number of successful observations absorbed.
func (s *AskTell) Observations() int { return len(s.obsY) }

// Failures returns how many failed evaluations have been handled.
func (s *AskTell) Failures() int { return s.fh.Failures() }

// Pending returns the number of suggested-but-unobserved points.
func (s *AskTell) Pending() int { return len(s.pending) + len(s.queue) }

// PendingPoints returns the suggested-but-unobserved points in suggestion
// order — the busy set X̂ of paper §III-C. The slices alias internal state;
// callers must not mutate them.
func (s *AskTell) PendingPoints() [][]float64 {
	out := make([][]float64, len(s.pending))
	for i, p := range s.pending {
		out[i] = p.x
	}
	return out
}

// Best returns the incumbent (nil, -Inf before any successful observation).
func (s *AskTell) Best() ([]float64, float64) { return s.bestX, s.bestY }

// Data returns the observed dataset in completion order. The slices alias
// internal state; callers must not mutate them.
func (s *AskTell) Data() ([][]float64, []float64) { return s.obsX, s.obsY }

// equalPoints compares coordinate vectors bit-for-bit: matching a tell to
// a pending proposal means "the same emitted value", so identical bits is
// the right relation (and NaN, which breaks ==, still matches itself).
func equalPoints(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
