package core

import (
	"fmt"

	"easybo/internal/sched"
)

// FailureAction is what a driver must do with one failed evaluation.
type FailureAction int

const (
	// ActionAbort: stop the run with the returned error.
	ActionAbort FailureAction = iota
	// ActionSkip: drop the observation; the failure consumed budget.
	ActionSkip
	// ActionResubmit: relaunch the same point; no extra budget consumed.
	ActionResubmit
)

// FailureHandler centralizes the failure-policy bookkeeping shared by every
// evaluation driver (AsyncLoop, the synchronous bo drivers, the public
// OptimizeParallel), so budget accounting and abort bounds cannot drift
// between them.
type FailureHandler struct {
	policy   FailurePolicy
	max      int
	failures int
}

// NewFailureHandler resolves the policy's failure bound: maxFailures when
// positive, otherwise unlimited for FailSkip (the evaluation budget already
// bounds it) and `budget` for FailResubmit (so a point that always fails
// cannot loop forever).
func NewFailureHandler(policy FailurePolicy, maxFailures, budget int) *FailureHandler {
	if maxFailures <= 0 {
		if policy == FailResubmit {
			maxFailures = budget
		} else {
			maxFailures = int(^uint(0) >> 1) // unlimited
		}
	}
	return &FailureHandler{policy: policy, max: maxFailures}
}

// Handle records one failed evaluation and returns the action the driver
// must take. The error is non-nil exactly for ActionAbort.
func (h *FailureHandler) Handle(r sched.Result) (FailureAction, error) {
	h.failures++
	if h.policy == FailAbort {
		return ActionAbort, fmt.Errorf("evaluation %d failed on worker %d: %w", r.ID, r.Worker, r.Err)
	}
	if h.failures > h.max {
		return ActionAbort, fmt.Errorf("%d evaluation failures exceed the limit %d, last: %w", h.failures, h.max, r.Err)
	}
	if h.policy == FailSkip {
		return ActionSkip, nil
	}
	return ActionResubmit, nil
}

// Failures returns how many failed evaluations have been handled.
func (h *FailureHandler) Failures() int { return h.failures }
