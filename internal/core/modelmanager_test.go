package core

import (
	"math"
	"math/rand"
	"testing"

	"easybo/internal/gp"
	"easybo/internal/surrogate"
)

func maternKernel() gp.Kernel { return gp.Matern52{} }

// growData returns an append-only observation history over [0,1]².
func growData(rng *rand.Rand, n int) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		xi := []float64{rng.Float64(), rng.Float64()}
		x = append(x, xi)
		y = append(y, math.Sin(4*xi[0])+xi[1])
	}
	return x, y
}

// TestModelManagerAutoEscalates pins the escalation policy: the auto
// backend serves exact fits below the threshold — byte-identical to a pure
// exact manager — and switches to the feature-space backend at it, one way.
func TestModelManagerAutoEscalates(t *testing.T) {
	lo, hi := []float64{0, 0}, []float64{1, 1}
	x, y := growData(rand.New(rand.NewSource(21)), 40)

	auto, err := NewModelManager(lo, hi, rand.New(rand.NewSource(5)), ModelManagerOptions{
		FitIters: 10, Backend: surrogate.BackendAuto, EscalateAt: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewModelManager(lo, hi, rand.New(rand.NewSource(5)), ModelManagerOptions{
		FitIters: 10, Backend: surrogate.BackendExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 5; n <= 40; n += 5 {
		sa, err := auto.Fit(x[:n], y[:n])
		if err != nil {
			t.Fatalf("auto n=%d: %v", n, err)
		}
		se, err := exact.Fit(x[:n], y[:n])
		if err != nil {
			t.Fatalf("exact n=%d: %v", n, err)
		}
		if n < 25 {
			if auto.Active() != surrogate.BackendExact {
				t.Fatalf("n=%d: auto escalated below the threshold", n)
			}
			// Identical rng seeds and identical code path: predictions must
			// agree to the bit below the threshold.
			xq := []float64{0.3, 0.7}
			ma, da := sa.Predict(xq)
			me, de := se.Predict(xq)
			if math.Float64bits(ma) != math.Float64bits(me) || math.Float64bits(da) != math.Float64bits(de) {
				t.Fatalf("n=%d: auto and exact posteriors differ below the threshold: (%v,%v) vs (%v,%v)", n, ma, da, me, de)
			}
		} else if auto.Active() != surrogate.BackendFeatures {
			t.Fatalf("n=%d: auto still on %s past the threshold", n, auto.Active())
		}
	}
	if _, _, ok := auto.Hyper(); !ok {
		t.Fatal("Hyper must report ok after escalation")
	}
}

// TestModelManagerExplicitFeatures runs the feature backend from the first
// observation.
func TestModelManagerExplicitFeatures(t *testing.T) {
	lo, hi := []float64{0, 0}, []float64{1, 1}
	x, y := growData(rand.New(rand.NewSource(22)), 30)
	mm, err := NewModelManager(lo, hi, rand.New(rand.NewSource(6)), ModelManagerOptions{
		FitIters: 10, Backend: surrogate.BackendFeatures, Features: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Active() != surrogate.BackendFeatures {
		t.Fatalf("explicit features backend reports %s", mm.Active())
	}
	for n := 10; n <= 30; n += 10 {
		s, err := mm.Fit(x[:n], y[:n])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.N() != n {
			t.Fatalf("n=%d: surrogate reports N=%d", n, s.N())
		}
		// The proposer path must accept the backend end to end.
		p := &Proposer{Lambda: 6, Penalize: true}
		xq, _, err := p.Propose(s, [][]float64{x[0]}, lo, hi, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("n=%d: propose: %v", n, err)
		}
		for j := range xq {
			if xq[j] < lo[j] || xq[j] > hi[j] {
				t.Fatalf("proposal out of box: %v", xq)
			}
		}
	}
}

// TestModelManagerAutoKeepsExactForCustomKernels: the feature basis only
// approximates SE-ARD, so a custom kernel must pin auto to the exact GP.
func TestModelManagerAutoKeepsExactForCustomKernels(t *testing.T) {
	lo, hi := []float64{0, 0}, []float64{1, 1}
	x, y := growData(rand.New(rand.NewSource(23)), 20)
	mm, err := NewModelManager(lo, hi, rand.New(rand.NewSource(8)), ModelManagerOptions{
		FitIters: 8, Backend: surrogate.BackendAuto, EscalateAt: 10, Kernel: maternKernel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if mm.Active() != surrogate.BackendExact {
		t.Fatalf("auto escalated a non-SE-ARD kernel onto the feature basis")
	}
}

// TestModelManagerRejectsBadConfigs pins the fail-fast validation: an
// explicit feature backend with a non-SE-ARD kernel, and a sub-minimum
// basis size, are construction-time errors rather than silent overrides.
func TestModelManagerRejectsBadConfigs(t *testing.T) {
	lo, hi := []float64{0}, []float64{1}
	if _, err := NewModelManager(lo, hi, rand.New(rand.NewSource(1)), ModelManagerOptions{
		Backend: surrogate.BackendFeatures, Kernel: maternKernel(),
	}); err == nil {
		t.Fatal("features backend must reject a non-SE-ARD kernel")
	}
	if _, err := NewModelManager(lo, hi, rand.New(rand.NewSource(1)), ModelManagerOptions{
		Backend: surrogate.BackendFeatures, Features: 4,
	}); err == nil {
		t.Fatal("a sub-minimum feature count must be rejected, not clamped")
	}
}
