package core

import (
	"math"
	"math/rand"
	"testing"

	"easybo/internal/gp"
	"easybo/internal/sched"
	"easybo/internal/surrogate"
)

func trainedModel(t *testing.T, rng *rand.Rand, n int) (surrogate.Surrogate, []float64, []float64) {
	t.Helper()
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	f := func(x []float64) float64 {
		return math.Sin(5*x[0]) + math.Cos(3*x[1])
	}
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	m, err := gp.Train(xs, ys, lo, hi, rng, &gp.TrainOptions{Fit: &gp.FitOptions{Iters: 20}})
	if err != nil {
		t.Fatal(err)
	}
	return surrogate.NewExact(m), lo, hi
}

func TestProposeStaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, lo, hi := trainedModel(t, rng, 15)
	p := &Proposer{Lambda: 6, Penalize: true}
	for i := 0; i < 10; i++ {
		x, w, err := p.Propose(m, nil, lo, hi, rng)
		if err != nil {
			t.Fatal(err)
		}
		if w < 0 || w > 6.0/7.0+1e-12 {
			t.Fatalf("weight %v outside EasyBO support", w)
		}
		for j := range x {
			if x[j] < lo[j] || x[j] > hi[j] {
				t.Fatalf("proposal out of box: %v", x)
			}
		}
	}
}

func TestProposeNilModel(t *testing.T) {
	p := &Proposer{Lambda: 6}
	if _, _, err := p.Propose(nil, nil, []float64{0}, []float64{1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("nil model must fail")
	}
}

func TestProposeAvoidsBusyPointsWhenPenalized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, lo, hi := trainedModel(t, rng, 12)

	// Find where the unpenalized proposer wants to go with a fixed seed.
	free := &Proposer{Lambda: 6, Penalize: false}
	xFree, _, err := free.Propose(m, nil, lo, hi, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	// Mark exactly that point busy; the penalized proposer with the same
	// inner-rng must move elsewhere.
	pen := &Proposer{Lambda: 6, Penalize: true}
	xPen, _, err := pen.Propose(m, [][]float64{xFree}, lo, hi, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var d float64
	for j := range xFree {
		diff := xFree[j] - xPen[j]
		d += diff * diff
	}
	if math.Sqrt(d) < 1e-3 {
		t.Fatalf("penalized proposal did not move away from the busy point: %v vs %v", xFree, xPen)
	}
}

func TestProposeBatchSizesAndDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, lo, hi := trainedModel(t, rng, 12)
	p := &Proposer{Lambda: 6, Penalize: true}
	batch, err := p.ProposeBatch(m, 4, lo, hi, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	// No exact duplicates within the batch.
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			same := true
			for k := range batch[i] {
				if batch[i][k] != batch[j][k] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("duplicate batch points %d and %d: %v", i, j, batch[i])
			}
		}
	}
	if _, err := p.ProposeBatch(m, 0, lo, hi, rng); err == nil {
		t.Fatal("batch size 0 must fail")
	}
}

func TestAsyncLoopRunsAlgorithm1(t *testing.T) {
	// Objective with position-dependent costs; the loop must complete
	// exactly MaxEvals evaluations and keep results flowing in end-time
	// order.
	f := func(x []float64) (float64, float64) {
		return -(x[0]-0.7)*(x[0]-0.7) - (x[1]-0.2)*(x[1]-0.2), 1 + 3*x[0]
	}
	ex := sched.NewVirtual(3, f)
	rng := rand.New(rand.NewSource(4))
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	var init [][]float64
	for i := 0; i < 8; i++ {
		init = append(init, []float64{rng.Float64(), rng.Float64()})
	}
	fit := func(xs [][]float64, ys []float64) (surrogate.Surrogate, error) {
		m, err := gp.Train(xs, ys, lo, hi, rng, &gp.TrainOptions{Fit: &gp.FitOptions{Iters: 10}})
		if err != nil {
			return nil, err
		}
		return surrogate.NewExact(m), nil
	}
	var seen []sched.Result
	err := AsyncLoop(ex, AsyncConfig{
		MaxEvals: 25,
		Init:     init,
		Lo:       lo, Hi: hi,
		Fit:      fit,
		Proposer: &Proposer{Lambda: 6, Penalize: true},
		Rng:      rng,
		OnResult: func(r sched.Result) { seen = append(seen, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 25 {
		t.Fatalf("completions = %d", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].End < seen[i-1].End {
			t.Fatal("results out of completion order")
		}
	}
	// The later proposals should concentrate toward the optimum (0.7, 0.2):
	// the best observed value must beat the best initial-design value.
	bestInit, bestAll := math.Inf(-1), math.Inf(-1)
	for i, r := range seen {
		if i < len(init) && r.Y > bestInit {
			bestInit = r.Y
		}
		if r.Y > bestAll {
			bestAll = r.Y
		}
	}
	if bestAll < bestInit {
		t.Fatal("optimization made things worse than the initial design")
	}
}

func TestAsyncLoopValidation(t *testing.T) {
	ex := sched.NewVirtual(1, func(x []float64) (float64, float64) { return 0, 1 })
	rng := rand.New(rand.NewSource(5))
	base := AsyncConfig{
		MaxEvals: 5,
		Init:     [][]float64{{0.5}},
		Lo:       []float64{0}, Hi: []float64{1},
		Fit:      func(x [][]float64, y []float64) (surrogate.Surrogate, error) { return nil, nil },
		Proposer: &Proposer{Lambda: 6},
		Rng:      rng,
	}
	bad := base
	bad.Fit = nil
	if err := AsyncLoop(ex, bad); err == nil {
		t.Fatal("nil Fit must fail")
	}
	bad = base
	bad.Proposer = nil
	if err := AsyncLoop(ex, bad); err == nil {
		t.Fatal("nil Proposer must fail")
	}
	bad = base
	bad.Rng = nil
	if err := AsyncLoop(ex, bad); err == nil {
		t.Fatal("nil Rng must fail")
	}
	bad = base
	bad.Init = nil
	if err := AsyncLoop(ex, bad); err == nil {
		t.Fatal("empty init must fail")
	}
	bad = base
	bad.MaxEvals = 0
	if err := AsyncLoop(ex, bad); err == nil {
		t.Fatal("MaxEvals < len(init) must fail")
	}
}
