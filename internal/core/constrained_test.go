package core

import (
	"math"
	"math/rand"
	"testing"

	"easybo/internal/gp"
	"easybo/internal/surrogate"
)

// constrainedSetup trains an objective surrogate preferring large x[0] and a
// constraint surrogate that forbids x[0] > 0.5 (c(x) = x[0] - 0.5 <= 0).
func constrainedSetup(t *testing.T, rng *rand.Rand) (obj surrogate.Surrogate, cons []surrogate.Surrogate, lo, hi []float64) {
	t.Helper()
	lo = []float64{0, 0}
	hi = []float64{1, 1}
	var xs [][]float64
	var ys, cs []float64
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, x[0])
		cs = append(cs, x[0]-0.5)
	}
	om, err := gp.Train(xs, ys, lo, hi, rng, &gp.TrainOptions{Fit: &gp.FitOptions{Iters: 25}})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := gp.Train(xs, cs, lo, hi, rng, &gp.TrainOptions{Fit: &gp.FitOptions{Iters: 25}})
	if err != nil {
		t.Fatal(err)
	}
	return surrogate.NewExact(om), []surrogate.Surrogate{surrogate.NewExact(cm)}, lo, hi
}

func TestProposeConstrainedRespectsFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	obj, cons, lo, hi := constrainedSetup(t, rng)
	p := &ConstrainedProposer{Lambda: 6, Penalize: true}
	// With a feasible incumbent, proposals should concentrate near the
	// feasibility boundary x[0] ≈ 0.5 (best feasible objective), not at the
	// unconstrained optimum x[0] = 1.
	hits := 0
	for i := 0; i < 8; i++ {
		x, err := p.ProposeConstrained(obj, cons, nil, lo, hi, true, rng)
		if err != nil {
			t.Fatal(err)
		}
		if x[0] < lo[0] || x[0] > hi[0] || x[1] < lo[1] || x[1] > hi[1] {
			t.Fatalf("proposal out of box: %v", x)
		}
		if x[0] < 0.62 { // allows some exploration above the boundary
			hits++
		}
	}
	if hits < 5 {
		t.Fatalf("only %d of 8 proposals respected the feasible region", hits)
	}
}

func TestProposeConstrainedFeasibilityHunt(t *testing.T) {
	// anyFeasible = false: proposals maximize the probability of feasibility,
	// i.e. drive x[0] low where the constraint surrogate is most negative.
	rng := rand.New(rand.NewSource(2))
	obj, cons, lo, hi := constrainedSetup(t, rng)
	p := &ConstrainedProposer{Lambda: 6}
	x, err := p.ProposeConstrained(obj, cons, nil, lo, hi, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] > 0.5 {
		t.Fatalf("feasibility hunt proposed x[0]=%v, expected deep inside the feasible half", x[0])
	}
}

func TestProposeConstrainedWithBusyPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	obj, cons, lo, hi := constrainedSetup(t, rng)
	p := &ConstrainedProposer{Lambda: 6, Penalize: true}
	busy := [][]float64{{0.45, 0.5}, {0.48, 0.2}}
	x, err := p.ProposeConstrained(obj, cons, busy, lo, hi, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !isFinite(x) {
		t.Fatalf("bad proposal %v", x)
	}
}

func TestProposeConstrainedNilObjective(t *testing.T) {
	p := &ConstrainedProposer{Lambda: 6}
	if _, err := p.ProposeConstrained(nil, nil, nil, []float64{0}, []float64{1}, true,
		rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("nil objective must fail")
	}
}

func isFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
