package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"easybo/internal/gp"
	"easybo/internal/sched"
)

// Fitter refreshes the surrogate from all observations so far. Implementors
// decide how often to re-optimize hyperparameters versus performing a cheap
// fixed-hyperparameter refit.
type Fitter func(x [][]float64, y []float64) (*gp.Model, error)

// FailurePolicy decides what AsyncLoop does with a failed evaluation
// (sched.Result.Err != nil): a panicked, NaN, timed-out, or cancelled run.
type FailurePolicy int

const (
	// FailAbort stops the loop on the first failed evaluation (default).
	FailAbort FailurePolicy = iota
	// FailSkip drops the failed observation. The failure still consumes one
	// evaluation of the MaxEvals budget — it occupied a worker — but never
	// reaches the surrogate.
	FailSkip
	// FailResubmit relaunches the same point on the freed worker. The retry
	// does not consume extra MaxEvals budget; runaway failure is bounded by
	// MaxFailures.
	FailResubmit
)

func (p FailurePolicy) String() string {
	switch p {
	case FailAbort:
		return "abort"
	case FailSkip:
		return "skip"
	case FailResubmit:
		return "resubmit"
	}
	return fmt.Sprintf("FailurePolicy(%d)", int(p))
}

// AsyncConfig configures AsyncLoop.
type AsyncConfig struct {
	MaxEvals int                // total evaluations including the initial design
	Init     [][]float64        // initial design points (raw coordinates)
	Lo, Hi   []float64          // design box
	Fit      Fitter             // surrogate refresher (required)
	Proposer *Proposer          // acquisition engine (required)
	Rng      *rand.Rand         // drives κ sampling and the inner maximizer
	OnResult func(sched.Result) // observes every successful completion in order (optional)

	// Ctx cancels the loop between completions (optional; nil means never).
	Ctx context.Context
	// Failure selects the policy for failed evaluations (default FailAbort).
	Failure FailurePolicy
	// MaxFailures bounds the total number of failed evaluations tolerated
	// before the loop aborts anyway. 0 means the policy default: unlimited
	// for FailSkip (the budget already bounds it), MaxEvals for
	// FailResubmit (so a point that always fails cannot loop forever).
	MaxFailures int
	// OnFailure observes every failed evaluation (optional).
	OnFailure func(sched.Result)
}

// AsyncLoop is Algorithm 1 of the paper: launch the initial design, then —
// whenever a worker becomes available — absorb the finished result, refresh
// the surrogate on the observed data, hallucinate the still-busy points
// (inside Proposer when Penalize is set), and dispatch the acquisition
// maximizer. The loop returns after exactly MaxEvals completions (counting
// skipped failures, which consumed budget, but not resubmitted ones).
//
// Failed evaluations never become observations: depending on Failure they
// abort the loop, are skipped, or are resubmitted. The surrogate is fit only
// on successful completions, so the observation count may end below
// MaxEvals under FailSkip.
func AsyncLoop(ex sched.Executor, cfg AsyncConfig) error {
	switch {
	case cfg.Fit == nil:
		return errors.New("core: AsyncLoop requires a Fitter")
	case cfg.Proposer == nil:
		return errors.New("core: AsyncLoop requires a Proposer")
	case cfg.Rng == nil:
		return errors.New("core: AsyncLoop requires an rng")
	case cfg.MaxEvals < len(cfg.Init):
		return fmt.Errorf("core: MaxEvals %d smaller than initial design %d", cfg.MaxEvals, len(cfg.Init))
	case len(cfg.Init) == 0:
		return errors.New("core: AsyncLoop requires an initial design")
	}
	fh := NewFailureHandler(cfg.Failure, cfg.MaxFailures, cfg.MaxEvals)

	launched := 0
	completed := 0
	var obsX [][]float64
	var obsY []float64

	ctxErr := func() error {
		if cfg.Ctx == nil {
			return nil
		}
		return cfg.Ctx.Err()
	}

	// Fill all workers from the initial design queue.
	for launched < len(cfg.Init) && launched < cfg.MaxEvals && ex.Idle() > 0 {
		if err := ex.Launch(cfg.Init[launched]); err != nil {
			return err
		}
		launched++
	}

	for completed < cfg.MaxEvals {
		if err := ctxErr(); err != nil {
			return fmt.Errorf("core: cancelled after %d of %d evaluations: %w", completed, cfg.MaxEvals, err)
		}
		r, ok := ex.Wait()
		if !ok {
			return fmt.Errorf("core: executor drained after %d of %d evaluations", completed, cfg.MaxEvals)
		}
		if r.Err != nil {
			if cfg.OnFailure != nil {
				cfg.OnFailure(r)
			}
			action, ferr := fh.Handle(r)
			switch action {
			case ActionSkip:
				completed++ // the failure consumed one budget slot
			case ActionResubmit:
				if err := ex.Launch(r.X); err != nil {
					return fmt.Errorf("core: resubmit of failed evaluation %d: %w", r.ID, err)
				}
				continue
			default: // ActionAbort
				return fmt.Errorf("core: %w", ferr)
			}
		} else {
			completed++
			obsX = append(obsX, r.X)
			obsY = append(obsY, r.Y)
			if cfg.OnResult != nil {
				cfg.OnResult(r)
			}
		}
		if launched >= cfg.MaxEvals {
			continue // draining the tail of the final batch
		}
		// Prefer the remaining initial design; otherwise propose.
		var next []float64
		if launched < len(cfg.Init) {
			next = cfg.Init[launched]
		} else {
			if len(obsY) == 0 {
				return fmt.Errorf("core: no successful observation after %d launches; cannot fit a surrogate", launched)
			}
			m, err := cfg.Fit(obsX, obsY)
			if err != nil {
				return fmt.Errorf("core: surrogate refresh: %w", err)
			}
			next, _, err = cfg.Proposer.Propose(m, ex.Busy(), cfg.Lo, cfg.Hi, cfg.Rng)
			if err != nil {
				return err
			}
		}
		if err := ex.Launch(next); err != nil {
			return err
		}
		launched++
	}
	return nil
}
