package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"easybo/internal/sched"
	"easybo/internal/surrogate"
)

// Fitter refreshes the surrogate from all observations so far. Implementors
// decide how often to re-optimize hyperparameters versus performing a cheap
// incremental refit, and which surrogate backend serves the posterior
// (ModelManager.Fit is the canonical implementation).
type Fitter func(x [][]float64, y []float64) (surrogate.Surrogate, error)

// FailurePolicy decides what AsyncLoop does with a failed evaluation
// (sched.Result.Err != nil): a panicked, NaN, timed-out, or cancelled run.
type FailurePolicy int

const (
	// FailAbort stops the loop on the first failed evaluation (default).
	FailAbort FailurePolicy = iota
	// FailSkip drops the failed observation. The failure still consumes one
	// evaluation of the MaxEvals budget — it occupied a worker — but never
	// reaches the surrogate.
	FailSkip
	// FailResubmit relaunches the same point on the freed worker. The retry
	// does not consume extra MaxEvals budget; runaway failure is bounded by
	// MaxFailures.
	FailResubmit
)

func (p FailurePolicy) String() string {
	switch p {
	case FailAbort:
		return "abort"
	case FailSkip:
		return "skip"
	case FailResubmit:
		return "resubmit"
	}
	return fmt.Sprintf("FailurePolicy(%d)", int(p))
}

// AsyncConfig configures AsyncLoop.
type AsyncConfig struct {
	MaxEvals int                // total evaluations including the initial design
	Init     [][]float64        // initial design points (raw coordinates)
	Lo, Hi   []float64          // design box
	Fit      Fitter             // surrogate refresher (required)
	Proposer *Proposer          // acquisition engine (required)
	Rng      *rand.Rand         // drives κ sampling and the inner maximizer
	OnResult func(sched.Result) // observes every successful completion in order (optional)

	// Ctx cancels the loop between completions (optional; nil means never).
	Ctx context.Context
	// Failure selects the policy for failed evaluations (default FailAbort).
	Failure FailurePolicy
	// MaxFailures bounds the total number of failed evaluations tolerated
	// before the loop aborts anyway. 0 means the policy default: unlimited
	// for FailSkip (the budget already bounds it), MaxEvals for
	// FailResubmit (so a point that always fails cannot loop forever).
	MaxFailures int
	// OnFailure observes every failed evaluation (optional).
	OnFailure func(sched.Result)
}

// AsyncLoop is Algorithm 1 of the paper: launch the initial design, then —
// whenever a worker becomes available — absorb the finished result, refresh
// the surrogate on the observed data, hallucinate the still-busy points
// (inside Proposer when Penalize is set), and dispatch the acquisition
// maximizer. The loop returns after exactly MaxEvals completions (counting
// skipped failures, which consumed budget, but not resubmitted ones).
//
// Failed evaluations never become observations: depending on Failure they
// abort the loop, are skipped, or are resubmitted. The surrogate is fit only
// on successful completions, so the observation count may end below
// MaxEvals under FailSkip.
//
// AsyncLoop is a thin adapter binding the AskTell state machine to an
// executor: suggestions go straight to Launch, completions straight to
// ObserveResult. The AskTell pending set therefore mirrors ex.Busy() exactly,
// and the decision sequence (surrogate refreshes, rng consumption, launch
// order) is identical to the pre-inversion loop — pinned byte-for-byte by
// the golden test in internal/bo.
func AsyncLoop(ex sched.Executor, cfg AsyncConfig) error {
	switch {
	case cfg.Fit == nil:
		return errors.New("core: AsyncLoop requires a Fitter")
	case cfg.Proposer == nil:
		return errors.New("core: AsyncLoop requires a Proposer")
	case cfg.Rng == nil:
		return errors.New("core: AsyncLoop requires an rng")
	case cfg.MaxEvals < len(cfg.Init):
		return fmt.Errorf("core: MaxEvals %d smaller than initial design %d", cfg.MaxEvals, len(cfg.Init))
	case len(cfg.Init) == 0:
		return errors.New("core: AsyncLoop requires an initial design")
	}
	at, err := NewAskTell(AskTellConfig{
		MaxEvals: cfg.MaxEvals,
		Init:     cfg.Init,
		Lo:       cfg.Lo, Hi: cfg.Hi,
		Fit:      cfg.Fit,
		Proposer: cfg.Proposer,
		Rng:      cfg.Rng,
		OnResult: cfg.OnResult,

		Failure:     cfg.Failure,
		MaxFailures: cfg.MaxFailures,
		OnFailure:   cfg.OnFailure,
	})
	if err != nil {
		return err
	}

	ctxErr := func() error {
		if cfg.Ctx == nil {
			return nil
		}
		return cfg.Ctx.Err()
	}

	launch := func(p Proposal) error {
		if err := ex.Launch(p.X); err != nil {
			if p.Resubmit {
				return fmt.Errorf("core: resubmit of failed evaluation %d: %w", p.FailedID, err)
			}
			return err
		}
		return nil
	}

	// Fill all workers from the initial design queue.
	for at.InInitialDesign() && ex.Idle() > 0 {
		p, ok, err := at.Suggest()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := launch(p); err != nil {
			return err
		}
	}

	for !at.Done() {
		if err := ctxErr(); err != nil {
			return fmt.Errorf("core: cancelled after %d of %d evaluations: %w", at.Completed(), cfg.MaxEvals, err)
		}
		r, ok := ex.Wait()
		if !ok {
			return fmt.Errorf("core: executor drained after %d of %d evaluations", at.Completed(), cfg.MaxEvals)
		}
		if err := at.ObserveResult(r); err != nil {
			return err
		}
		p, ok, err := at.Suggest()
		if err != nil {
			return err
		}
		if !ok {
			continue // draining the tail of the final batch
		}
		if err := launch(p); err != nil {
			return err
		}
	}
	return nil
}
