package core

import (
	"errors"
	"fmt"
	"math/rand"

	"easybo/internal/gp"
	"easybo/internal/sched"
)

// Fitter refreshes the surrogate from all observations so far. Implementors
// decide how often to re-optimize hyperparameters versus performing a cheap
// fixed-hyperparameter refit.
type Fitter func(x [][]float64, y []float64) (*gp.Model, error)

// AsyncConfig configures AsyncLoop.
type AsyncConfig struct {
	MaxEvals int                // total evaluations including the initial design
	Init     [][]float64        // initial design points (raw coordinates)
	Lo, Hi   []float64          // design box
	Fit      Fitter             // surrogate refresher (required)
	Proposer *Proposer          // acquisition engine (required)
	Rng      *rand.Rand         // drives κ sampling and the inner maximizer
	OnResult func(sched.Result) // observes every completion in order (optional)
}

// AsyncLoop is Algorithm 1 of the paper: launch the initial design, then —
// whenever a worker becomes available — absorb the finished result, refresh
// the surrogate on the observed data, hallucinate the still-busy points
// (inside Proposer when Penalize is set), and dispatch the acquisition
// maximizer. The loop returns after exactly MaxEvals completions.
func AsyncLoop(ex sched.Executor, cfg AsyncConfig) error {
	switch {
	case cfg.Fit == nil:
		return errors.New("core: AsyncLoop requires a Fitter")
	case cfg.Proposer == nil:
		return errors.New("core: AsyncLoop requires a Proposer")
	case cfg.Rng == nil:
		return errors.New("core: AsyncLoop requires an rng")
	case cfg.MaxEvals < len(cfg.Init):
		return fmt.Errorf("core: MaxEvals %d smaller than initial design %d", cfg.MaxEvals, len(cfg.Init))
	case len(cfg.Init) == 0:
		return errors.New("core: AsyncLoop requires an initial design")
	}

	launched := 0
	completed := 0
	var obsX [][]float64
	var obsY []float64

	// Fill all workers from the initial design queue.
	for launched < len(cfg.Init) && launched < cfg.MaxEvals && ex.Idle() > 0 {
		if err := ex.Launch(cfg.Init[launched]); err != nil {
			return err
		}
		launched++
	}

	for completed < cfg.MaxEvals {
		r, ok := ex.Wait()
		if !ok {
			return fmt.Errorf("core: executor drained after %d of %d evaluations", completed, cfg.MaxEvals)
		}
		completed++
		obsX = append(obsX, r.X)
		obsY = append(obsY, r.Y)
		if cfg.OnResult != nil {
			cfg.OnResult(r)
		}
		if launched >= cfg.MaxEvals {
			continue // draining the tail of the final batch
		}
		// Prefer the remaining initial design; otherwise propose.
		var next []float64
		if launched < len(cfg.Init) {
			next = cfg.Init[launched]
		} else {
			m, err := cfg.Fit(obsX, obsY)
			if err != nil {
				return fmt.Errorf("core: surrogate refresh: %w", err)
			}
			next, _, err = cfg.Proposer.Propose(m, ex.Busy(), cfg.Lo, cfg.Hi, cfg.Rng)
			if err != nil {
				return err
			}
		}
		if err := ex.Launch(next); err != nil {
			return err
		}
		launched++
	}
	return nil
}
