package core

import (
	"math/rand"

	"easybo/internal/gp"
)

// ModelManagerOptions tunes a ModelManager. Zero values select the paper's
// defaults (refit cadence 5, 40 Adam iterations, 1 restart, SE-ARD kernel).
type ModelManagerOptions struct {
	RefitEvery  int       // hyperparameter re-optimization cadence in observations
	FitIters    int       // Adam iterations per hyperfit
	FitRestarts int       // random restarts on the first hyperfit
	Kernel      gp.Kernel // surrogate kernel (nil = SE-ARD)
}

// ModelManager owns the surrogate across a run: it re-optimizes
// hyperparameters every RefitEvery observations (warm-started from the last
// fit) and performs cheap fixed-hyperparameter refits in between, caching
// the fitted model while the dataset is unchanged. Its Fit method is a
// core.Fitter, shared by the bo drivers, the public ask/tell Loop, and the
// serve sessions so surrogate cadence cannot drift between them.
type ModelManager struct {
	lo, hi      []float64
	rng         *rand.Rand
	refitEvery  int
	fitIters    int
	fitRestarts int

	kernel     gp.Kernel
	lastHyperN int // dataset size at the last hyperparameter optimization
	theta      []float64
	logNoise   float64
	cached     *gp.Model
	cachedN    int
}

// NewModelManager builds a surrogate manager over the design box. The rng
// drives hyperparameter restarts and must be the run's rng for determinism.
func NewModelManager(lo, hi []float64, rng *rand.Rand, o ModelManagerOptions) *ModelManager {
	if o.RefitEvery <= 0 {
		o.RefitEvery = 5
	}
	if o.FitIters <= 0 {
		o.FitIters = 40
	}
	if o.FitRestarts <= 0 {
		o.FitRestarts = 1
	}
	return &ModelManager{
		lo: lo, hi: hi, rng: rng,
		refitEvery:  o.RefitEvery,
		fitIters:    o.FitIters,
		fitRestarts: o.FitRestarts,
		kernel:      o.Kernel,
	}
}

// Fit returns a surrogate trained on the observations, re-optimizing
// hyperparameters on the configured cadence. Observations are append-only
// across a run, so a cached model is valid while the count is unchanged and
// can absorb new points through the incremental rank-append update — between
// hyperparameter refits no covariance rebuild or refactorization happens.
func (mm *ModelManager) Fit(x [][]float64, y []float64) (*gp.Model, error) {
	n := len(y)
	if mm.cached != nil && n == mm.cachedN {
		return mm.cached, nil
	}
	if mm.theta != nil && n-mm.lastHyperN < mm.refitEvery {
		// Between hyperparameter refits: absorb the new points through the
		// rank-append update. Failure means the frozen hyperparameters or
		// standardization became numerically unusable for the grown dataset
		// (e.g. duplicate points with tiny noise); fall through to a fresh
		// hyperparameter fit in that case.
		m, err := mm.cached.Extend(x[mm.cachedN:n], y[mm.cachedN:n])
		if err == nil {
			mm.cached = m
			mm.cachedN = n
			return m, nil
		}
	}
	fo := &gp.FitOptions{Iters: mm.fitIters, Restarts: mm.fitRestarts}
	if mm.theta != nil {
		// Warm start: fewer iterations, no default or random restarts.
		fo.InitTheta = mm.theta
		fo.InitNoise = mm.logNoise
		fo.WarmOnly = true
		fo.Iters = mm.fitIters / 2
		if fo.Iters < 10 {
			fo.Iters = 10
		}
	}
	m, err := gp.Train(x, y, mm.lo, mm.hi, mm.rng, &gp.TrainOptions{Kernel: mm.kernel, Fit: fo})
	if err != nil {
		return nil, err
	}
	mm.theta = m.Theta()
	mm.logNoise = m.LogNoise()
	mm.lastHyperN = n
	mm.cached = m
	mm.cachedN = n
	return m, nil
}

// Hyper returns the hyperparameters of the last optimization (ok=false
// before the first fit). Exposed so service sessions can report and
// snapshot them.
func (mm *ModelManager) Hyper() (theta []float64, logNoise float64, ok bool) {
	if mm.theta == nil {
		return nil, 0, false
	}
	return append([]float64(nil), mm.theta...), mm.logNoise, true
}
