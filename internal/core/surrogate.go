package core

import (
	"fmt"
	"math/rand"

	"easybo/internal/gp"
	"easybo/internal/surrogate"
)

// ModelManagerOptions tunes a ModelManager. Zero values select the paper's
// defaults (refit cadence 5, 40 Adam iterations, 1 restart, SE-ARD kernel)
// on the auto backend.
type ModelManagerOptions struct {
	RefitEvery  int       // hyperparameter re-optimization cadence in observations
	FitIters    int       // Adam iterations per hyperfit
	FitRestarts int       // random restarts on the first hyperfit
	Kernel      gp.Kernel // surrogate kernel (nil = SE-ARD; exact backend only)

	// Backend selects the surrogate implementation (default
	// surrogate.BackendAuto: exact below EscalateAt, feature-space past it).
	Backend surrogate.Backend
	// EscalateAt is the observation count at which the auto backend
	// escalates exact → feature-space (default surrogate.DefaultEscalateAt).
	// Below it, auto behaves byte-identically to the exact backend.
	EscalateAt int
	// Features is the feature-space basis size m (default
	// surrogate.DefaultFeatures).
	Features int
}

// ModelManager owns the surrogate across a run: it delegates to the
// configured backend manager and, on the auto backend, escalates from the
// exact GP to the feature-space backend once the observation count reaches
// EscalateAt (a one-way switch, warm-starting the feature backend's
// hyperparameters from the exact fit). Its Fit method is a core.Fitter,
// shared by the bo drivers, the public ask/tell Loop, and the serve
// sessions so surrogate cadence cannot drift between them.
//
// The feature-space backend approximates the SE-ARD kernel only; with a
// custom Kernel the auto backend never escalates.
type ModelManager struct {
	lo, hi []float64
	rng    *rand.Rand
	opts   ModelManagerOptions

	exact *surrogate.ExactManager
	feat  *surrogate.FeatureManager
}

// NewModelManager builds a surrogate manager over the design box. The rng
// drives hyperparameter restarts, subsampling, and feature draws; it must
// be the run's rng for determinism.
func NewModelManager(lo, hi []float64, rng *rand.Rand, o ModelManagerOptions) (*ModelManager, error) {
	if o.Backend == "" {
		o.Backend = surrogate.BackendAuto
	}
	if o.EscalateAt <= 0 {
		o.EscalateAt = surrogate.DefaultEscalateAt
	}
	if o.Features > 0 && o.Features < gp.MinRFFFeatures {
		// Mirror gp.NewRFF: a too-small basis is an error, never a silent
		// resize (Features <= 0 means "use the default").
		return nil, fmt.Errorf("core: %d surrogate features requested, minimum is %d", o.Features, gp.MinRFFFeatures)
	}
	mm := &ModelManager{lo: lo, hi: hi, rng: rng, opts: o}
	if o.Backend == surrogate.BackendFeatures {
		if o.Kernel != nil {
			if _, ok := o.Kernel.(gp.SEARD); !ok {
				// The feature basis approximates SE-ARD only; quietly fitting
				// a different kernel family than configured would be worse
				// than refusing.
				return nil, fmt.Errorf("core: the feature-space backend supports the SE-ARD kernel, not %s", o.Kernel.Name())
			}
		}
		mm.feat = surrogate.NewFeatureManager(lo, hi, rng, mm.featureOptions())
	} else {
		mm.exact = surrogate.NewExactManager(lo, hi, rng, surrogate.ExactOptions{
			RefitEvery:  o.RefitEvery,
			FitIters:    o.FitIters,
			FitRestarts: o.FitRestarts,
			Kernel:      o.Kernel,
		})
	}
	return mm, nil
}

func (mm *ModelManager) featureOptions() surrogate.FeatureOptions {
	return surrogate.FeatureOptions{
		Features: mm.opts.Features,
		FitIters: mm.opts.FitIters,
	}
}

// Fit returns a surrogate trained on the observations, re-optimizing
// hyperparameters on the active backend's cadence. Observations are
// append-only across a run; between hyperparameter refits new points are
// absorbed incrementally (rank-append on the exact backend, rank-1
// information updates on the feature-space backend).
func (mm *ModelManager) Fit(x [][]float64, y []float64) (surrogate.Surrogate, error) {
	if mm.feat == nil && mm.shouldEscalate(len(y)) {
		fo := mm.featureOptions()
		if theta, logNoise, ok := mm.exact.Hyper(); ok {
			fo.InitTheta, fo.InitNoise = theta, logNoise
		}
		mm.feat = surrogate.NewFeatureManager(mm.lo, mm.hi, mm.rng, fo)
		mm.exact = nil // the switch is one-way; free the O(n²) factor state
	}
	if mm.feat != nil {
		return mm.feat.Fit(x, y)
	}
	return mm.exact.Fit(x, y)
}

// shouldEscalate reports whether the auto backend hands over to the
// feature-space manager at n observations.
func (mm *ModelManager) shouldEscalate(n int) bool {
	if mm.opts.Backend != surrogate.BackendAuto || n < mm.opts.EscalateAt {
		return false
	}
	if mm.opts.Kernel != nil {
		if _, ok := mm.opts.Kernel.(gp.SEARD); !ok {
			return false // feature basis approximates SE-ARD only
		}
	}
	return true
}

// Active returns the backend currently serving fits: BackendExact until an
// auto escalation (or always, for the exact backend), BackendFeatures
// afterwards. Exposed for status reporting.
func (mm *ModelManager) Active() surrogate.Backend {
	if mm.feat != nil {
		return surrogate.BackendFeatures
	}
	return surrogate.BackendExact
}

// Hyper returns the hyperparameters of the last optimization (ok=false
// before the first fit). Exposed so service sessions can report and
// snapshot them.
func (mm *ModelManager) Hyper() (theta []float64, logNoise float64, ok bool) {
	if mm.feat != nil {
		return mm.feat.Hyper()
	}
	return mm.exact.Hyper()
}
