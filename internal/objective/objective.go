// Package objective defines the optimization problems consumed by the BO
// drivers: a Problem carries box bounds, the black-box figure of merit to
// MAXIMIZE, and a simulation-cost model giving the virtual runtime of each
// evaluation (the HSPICE wall-clock stand-in; see DESIGN.md).
//
// The package also provides the classic synthetic benchmarks (Branin,
// Hartmann-6, Ackley, Rosenbrock, Levy, Sphere) used by tests and examples.
package objective

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a box-constrained maximization problem.
type Problem struct {
	Name string
	Lo   []float64
	Hi   []float64
	// Eval returns the figure of merit at x (maximize). It must be safe
	// for concurrent use.
	Eval func(x []float64) float64
	// NewEval optionally returns a fresh evaluator instance owning private
	// simulator state (compiled circuits, solver workspaces). Parallel
	// executors give each worker its own instance so evaluations skip all
	// per-call setup without synchronizing; the returned function need not
	// be safe for concurrent use. Nil means workers share Eval.
	NewEval func() func(x []float64) float64
	// Cost returns the simulated evaluation runtime in seconds. Nil means
	// unit cost.
	Cost func(x []float64) float64
	// BestKnown is the known optimum FOM when available (for regret
	// reporting); NaN when unknown.
	BestKnown float64
}

// Dim returns the input dimension.
func (p *Problem) Dim() int { return len(p.Lo) }

// Validate reports structural problems.
func (p *Problem) Validate() error {
	if p.Eval == nil {
		return errors.New("objective: nil Eval")
	}
	if len(p.Lo) == 0 || len(p.Lo) != len(p.Hi) {
		return fmt.Errorf("objective: bad bounds (%d vs %d)", len(p.Lo), len(p.Hi))
	}
	for i := range p.Lo {
		if !(p.Lo[i] < p.Hi[i]) {
			return fmt.Errorf("objective: empty box in dimension %d", i)
		}
	}
	return nil
}

// EvalWithCost returns the objective value and the simulated cost at x.
func (p *Problem) EvalWithCost(x []float64) (y, cost float64) {
	y = p.Eval(x)
	if p.Cost != nil {
		cost = p.Cost(x)
	} else {
		cost = 1
	}
	return y, cost
}

// Clamp projects x into the problem box, in place.
func (p *Problem) Clamp(x []float64) {
	for i := range x {
		if x[i] < p.Lo[i] {
			x[i] = p.Lo[i]
		}
		if x[i] > p.Hi[i] {
			x[i] = p.Hi[i]
		}
	}
}

// uniformBounds builds d-dimensional [lo, hi] boxes.
func uniformBounds(d int, lo, hi float64) ([]float64, []float64) {
	l := make([]float64, d)
	h := make([]float64, d)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return l, h
}

// Branin returns the (negated) Branin-Hoo function on [-5,10]×[0,15];
// max value 0 at three global optima (classic BO smoke test).
func Branin() *Problem {
	const (
		a = 1.0
		b = 5.1 / (4 * math.Pi * math.Pi)
		c = 5 / math.Pi
		r = 6.0
		s = 10.0
		t = 1 / (8 * math.Pi)
	)
	return &Problem{
		Name: "branin",
		Lo:   []float64{-5, 0},
		Hi:   []float64{10, 15},
		Eval: func(x []float64) float64 {
			v := a*math.Pow(x[1]-b*x[0]*x[0]+c*x[0]-r, 2) + s*(1-t)*math.Cos(x[0]) + s
			return -(v - 0.397887) // shift so the max is 0
		},
		BestKnown: 0,
	}
}

// Hartmann6 returns the negated 6-D Hartmann function on [0,1]^6;
// max value ≈ 3.32237.
func Hartmann6() *Problem {
	alpha := [4]float64{1.0, 1.2, 3.0, 3.2}
	A := [4][6]float64{
		{10, 3, 17, 3.5, 1.7, 8},
		{0.05, 10, 17, 0.1, 8, 14},
		{3, 3.5, 1.7, 10, 17, 8},
		{17, 8, 0.05, 10, 0.1, 14},
	}
	P := [4][6]float64{
		{0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886},
		{0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991},
		{0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650},
		{0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381},
	}
	lo, hi := uniformBounds(6, 0, 1)
	return &Problem{
		Name: "hartmann6",
		Lo:   lo, Hi: hi,
		Eval: func(x []float64) float64 {
			var sum float64
			for i := 0; i < 4; i++ {
				var inner float64
				for j := 0; j < 6; j++ {
					d := x[j] - P[i][j]
					inner += A[i][j] * d * d
				}
				sum += alpha[i] * math.Exp(-inner)
			}
			return sum
		},
		BestKnown: 3.32237,
	}
}

// Ackley returns the negated Ackley function on [-5,5]^d; max value 0 at 0.
func Ackley(d int) *Problem {
	lo, hi := uniformBounds(d, -5, 5)
	return &Problem{
		Name: fmt.Sprintf("ackley%d", d),
		Lo:   lo, Hi: hi,
		Eval: func(x []float64) float64 {
			var s1, s2 float64
			for _, v := range x {
				s1 += v * v
				s2 += math.Cos(2 * math.Pi * v)
			}
			n := float64(len(x))
			v := -20*math.Exp(-0.2*math.Sqrt(s1/n)) - math.Exp(s2/n) + 20 + math.E
			return -v
		},
		BestKnown: 0,
	}
}

// Rosenbrock returns the negated Rosenbrock function on [-2,2]^d;
// max value 0 at (1,…,1).
func Rosenbrock(d int) *Problem {
	lo, hi := uniformBounds(d, -2, 2)
	return &Problem{
		Name: fmt.Sprintf("rosenbrock%d", d),
		Lo:   lo, Hi: hi,
		Eval: func(x []float64) float64 {
			var s float64
			for i := 0; i+1 < len(x); i++ {
				a := 1 - x[i]
				b := x[i+1] - x[i]*x[i]
				s += a*a + 100*b*b
			}
			return -s
		},
		BestKnown: 0,
	}
}

// Levy returns the negated Levy function on [-10,10]^d; max value 0 at
// (1,…,1).
func Levy(d int) *Problem {
	lo, hi := uniformBounds(d, -10, 10)
	w := func(x float64) float64 { return 1 + (x-1)/4 }
	return &Problem{
		Name: fmt.Sprintf("levy%d", d),
		Lo:   lo, Hi: hi,
		Eval: func(x []float64) float64 {
			n := len(x)
			s := math.Pow(math.Sin(math.Pi*w(x[0])), 2)
			for i := 0; i < n-1; i++ {
				wi := w(x[i])
				s += (wi - 1) * (wi - 1) * (1 + 10*math.Pow(math.Sin(math.Pi*wi+1), 2))
			}
			wn := w(x[n-1])
			s += (wn - 1) * (wn - 1) * (1 + math.Pow(math.Sin(2*math.Pi*wn), 2))
			return -s
		},
		BestKnown: 0,
	}
}

// Sphere returns the negated sphere function on [-5,5]^d; max value 0 at 0.
func Sphere(d int) *Problem {
	lo, hi := uniformBounds(d, -5, 5)
	return &Problem{
		Name: fmt.Sprintf("sphere%d", d),
		Lo:   lo, Hi: hi,
		Eval: func(x []float64) float64 {
			var s float64
			for _, v := range x {
				s += v * v
			}
			return -s
		},
		BestKnown: 0,
	}
}

// WithCost returns a copy of p using the given cost model.
func WithCost(p *Problem, cost func(x []float64) float64) *Problem {
	q := *p
	q.Cost = cost
	return &q
}
