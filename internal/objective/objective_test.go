package objective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Branin()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Problem{Lo: []float64{0}, Hi: []float64{1}}
	if bad.Validate() == nil {
		t.Fatal("nil Eval must fail")
	}
	bad2 := &Problem{Lo: []float64{1}, Hi: []float64{0}, Eval: func([]float64) float64 { return 0 }}
	if bad2.Validate() == nil {
		t.Fatal("inverted bounds must fail")
	}
	bad3 := &Problem{Lo: []float64{0, 0}, Hi: []float64{1}, Eval: func([]float64) float64 { return 0 }}
	if bad3.Validate() == nil {
		t.Fatal("bounds length mismatch must fail")
	}
}

func TestKnownOptima(t *testing.T) {
	cases := []struct {
		p    *Problem
		x    []float64
		want float64
	}{
		{Branin(), []float64{math.Pi, 2.275}, 0},
		{Branin(), []float64{-math.Pi, 12.275}, 0},
		{Branin(), []float64{9.42478, 2.475}, 0},
		{Sphere(3), []float64{0, 0, 0}, 0},
		{Rosenbrock(4), []float64{1, 1, 1, 1}, 0},
		{Levy(3), []float64{1, 1, 1}, 0},
		{Hartmann6(), []float64{0.20169, 0.150011, 0.476874, 0.275332, 0.311652, 0.6573}, 3.32237},
	}
	for _, c := range cases {
		got := c.p.Eval(c.x)
		if math.Abs(got-c.want) > 1e-3 {
			t.Fatalf("%s at %v = %v, want %v", c.p.Name, c.x, got, c.want)
		}
	}
	if v := Ackley(4).Eval([]float64{0, 0, 0, 0}); math.Abs(v) > 1e-12 {
		t.Fatalf("Ackley origin = %v", v)
	}
}

func TestOptimaAreMaxima(t *testing.T) {
	// Random points must never exceed the known best value.
	rng := rand.New(rand.NewSource(1))
	problems := []*Problem{Branin(), Sphere(3), Rosenbrock(3), Levy(4), Ackley(5), Hartmann6()}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, p := range problems {
			x := make([]float64, p.Dim())
			for j := range x {
				x[j] = p.Lo[j] + r.Float64()*(p.Hi[j]-p.Lo[j])
			}
			if p.Eval(x) > p.BestKnown+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalWithCostDefaultsToUnit(t *testing.T) {
	p := Sphere(2)
	y, cost := p.EvalWithCost([]float64{1, 1})
	if y != -2 || cost != 1 {
		t.Fatalf("y=%v cost=%v", y, cost)
	}
	q := WithCost(p, func(x []float64) float64 { return 42 })
	if _, c := q.EvalWithCost([]float64{0, 0}); c != 42 {
		t.Fatalf("cost = %v", c)
	}
	// WithCost must not mutate the original.
	if p.Cost != nil {
		t.Fatal("WithCost mutated the source problem")
	}
}

func TestClamp(t *testing.T) {
	p := Sphere(2)
	x := []float64{-99, 99}
	p.Clamp(x)
	if x[0] != -5 || x[1] != 5 {
		t.Fatalf("clamped to %v", x)
	}
}

func TestDim(t *testing.T) {
	if Hartmann6().Dim() != 6 || Branin().Dim() != 2 || Ackley(7).Dim() != 7 {
		t.Fatal("Dim wrong")
	}
}
