package analysis

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one seeded-violation package from testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := LoadPackages("", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// wantRe matches `// want <analyzer>` or `// want <analyzer> "substr"`
// markers trailing the line an analyzer must flag.
var wantRe = regexp.MustCompile(`// want ([a-z]+)(?: "([^"]*)")?`)

type want struct {
	line     int
	analyzer string
	substr   string
}

// parseWants scans a fixture's source for want markers.
func parseWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, want{line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over its fixture and requires the
// diagnostics to match the want markers exactly: every want is hit, every
// diagnostic is wanted. The fixture's suppression case doubles as the
// directive-matching test — a finding silenced by //easybolint:ok must not
// surface.
func checkFixture(t *testing.T, az *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, az.Name)
	diags := RunAnalyzer(pkg, az)
	wants := parseWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want markers; the self-test would pass vacuously", az.Name)
	}

	type key struct {
		line     int
		analyzer string
	}
	unmatched := map[key][]string{}
	for _, d := range diags {
		k := key{d.Pos.Line, d.Analyzer}
		unmatched[k] = append(unmatched[k], d.Message)
	}
	for _, w := range wants {
		k := key{w.line, w.analyzer}
		msgs := unmatched[k]
		if len(msgs) == 0 {
			t.Errorf("%s: line %d: want a %s finding, got none", az.Name, w.line, w.analyzer)
			continue
		}
		if w.substr != "" && !strings.Contains(msgs[0], w.substr) {
			t.Errorf("%s: line %d: finding %q does not contain %q", az.Name, w.line, msgs[0], w.substr)
		}
		if len(msgs) == 1 {
			delete(unmatched, k)
		} else {
			unmatched[k] = msgs[1:]
		}
	}
	for k, msgs := range unmatched {
		for _, m := range msgs {
			t.Errorf("%s: line %d: unexpected finding: %s", az.Name, k.line, m)
		}
	}
}

func TestMapOrderFixture(t *testing.T) { checkFixture(t, MapOrder) }

func TestWallTimeFixture(t *testing.T) { checkFixture(t, WallTime) }

func TestFloatEqFixture(t *testing.T) { checkFixture(t, FloatEq) }

func TestErrDropFixture(t *testing.T) { checkFixture(t, ErrDrop) }

// TestDirectiveFixture asserts the malformed-comment findings explicitly:
// a trailing want marker would be swallowed into the directive text.
func TestDirectiveFixture(t *testing.T) {
	pkg := loadFixture(t, "directive")
	diags := RunAnalyzer(pkg, Directive)
	wantSubstrs := []string{
		`unknown easybolint directive "nolint"`,
		`unknown analyzer "nosuchanalyzer"`,
		"has no reason",
	}
	if len(diags) != len(wantSubstrs) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(wantSubstrs), fmtDiags(diags))
	}
	for i, sub := range wantSubstrs {
		if !strings.Contains(diags[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, sub)
		}
	}
}

// TestUnusedSuppression runs the full suite the way easybolint does and
// requires the stale directive in the fixture to be reported.
func TestUnusedSuppression(t *testing.T) {
	pkgs, err := LoadPackages("", "./testdata/src/unused")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Config{CheckUnused: true})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(diags), fmtDiags(diags))
	}
	if d := diags[0]; d.Analyzer != "directive" || !strings.Contains(d.Message, "maporder") {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestPolicyScope pins the written-down determinism boundary: the replay
// core is covered, the executor edge is not.
func TestPolicyScope(t *testing.T) {
	cases := []struct {
		pkg           string
		deterministic bool
		durability    bool
	}{
		{"easybo", true, false},
		{"easybo/internal/core", true, false},
		{"easybo/internal/serve", true, false},
		{"easybo/internal/serve/wal", true, true},
		{"easybo/internal/gp", true, false},
		{"easybo/internal/circuit", true, false},
		{"easybo/cmd/easybod", false, true},
		// The cluster layer is durability territory (a dropped Fence or
		// Adopt error forks a session) but NOT deterministic: heartbeats
		// and retry pacing legitimately read the wall clock.
		{"easybo/internal/cluster", false, true},
		{"easybo/internal/sched", false, false},   // executor edge: wall-clock worker timing
		{"easybo/internal/harness", false, false}, // experiment tables, wall clock
		{"easybo/cmd/easybo", false, false},       // client retrier's jittered backoff
		{"easybo/internal/analysis", false, false},
	}
	for _, c := range cases {
		if got := isDeterministic(c.pkg); got != c.deterministic {
			t.Errorf("isDeterministic(%s) = %v, want %v", c.pkg, got, c.deterministic)
		}
		if got := isDurability(c.pkg); got != c.durability {
			t.Errorf("isDurability(%s) = %v, want %v", c.pkg, got, c.durability)
		}
	}
}

// TestTreeClean is the self-hosted gate: the suite, run exactly as `make
// lint` runs it, must be clean on the real tree — zero findings and zero
// stale suppressions.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := LoadPackages("", "easybo/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the tree gate is not seeing the module", len(pkgs))
	}
	diags := Run(pkgs, Config{CheckUnused: true})
	if len(diags) > 0 {
		t.Errorf("tree is not lint-clean:\n%s", fmtDiags(diags))
	}
}

func fmtDiags(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintln(&b, d.String())
	}
	return b.String()
}

// TestLoadDirRejectsMissing pins the loader's error path.
func TestLoadMissingPattern(t *testing.T) {
	if _, err := LoadPackages("", "./testdata/src/nosuchpkg"); err == nil {
		t.Fatal("loading a nonexistent package succeeded")
	}
}
