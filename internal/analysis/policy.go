package analysis

import "strings"

// This file is the single written-down form of the determinism boundary:
// which packages must replay bit-for-bit, and which analyzers police them.
// DESIGN.md §6 explains the boundary; this is the machine-readable copy.

// deterministicPkgs are the packages on the replay side of the boundary.
// Everything the ask/tell core re-derives during snapshot restore and WAL
// crash recovery flows through them, so any value they compute must be a
// pure function of (seed, config, tell order): no map-iteration order, no
// wall clock, no global randomness may reach an emitted ask, a serialized
// byte, or a float accumulation.
//
// Deliberately absent — the nondeterministic executor edge:
//
//	easybo/internal/sched      real goroutines, wall-clock worker timing
//	easybo/internal/harness    wall-clock experiment tables
//	easybo/internal/profiling  pprof plumbing
//	easybo/cmd/*               process edges (flags, HTTP, retry jitter);
//	                           cmd/easybod is still errdrop territory
//	easybo/examples/*          demo mains
//
// The boundary is crossed only through values recorded in the event log:
// a worker may take any amount of wall time to evaluate a point, but the
// (x, y) it tells the core is all the core ever sees.
var deterministicPkgs = map[string]bool{
	"easybo":                        true, // public Loop replays through the same AskTell core
	"easybo/internal/acq":           true,
	"easybo/internal/bo":            true,
	"easybo/internal/circuit":       true, // stamp planning and solves feed objective values
	"easybo/internal/core":          true,
	"easybo/internal/gp":            true,
	"easybo/internal/linalg":        true,
	"easybo/internal/linalg/sparse": true,
	"easybo/internal/objective":     true,
	"easybo/internal/optimize":      true,
	"easybo/internal/serve":         true,
	"easybo/internal/serve/wal":     true,
	"easybo/internal/stats":         true,
	"easybo/internal/surrogate":     true,
	"easybo/internal/testbench":     true,
}

// durabilityPkgs are where a silently dropped error can lose acknowledged
// data: the WAL itself, the daemon that owns shutdown ordering, and the
// cluster layer that moves fenced sessions between nodes. The cluster
// package is deliberately NOT in deterministicPkgs — heartbeats and retry
// pacing legitimately read the wall clock — but a dropped Fence or Adopt
// error there silently forks a session, so errdrop still applies.
var durabilityPkgs = map[string]bool{
	"easybo/internal/serve/wal": true,
	"easybo/internal/cluster":   true,
	"easybo/cmd/easybod":        true,
}

func isDeterministic(pkgPath string) bool { return deterministicPkgs[pkgPath] }

func isDurability(pkgPath string) bool { return durabilityPkgs[pkgPath] }

// inModule distinguishes this module's packages from the standard library
// when analyzers are pointed at arbitrary patterns.
func inModule(pkgPath string) bool {
	return pkgPath == "easybo" || strings.HasPrefix(pkgPath, "easybo/")
}
