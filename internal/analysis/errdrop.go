package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error returns from durability-critical calls in
// the WAL layer and the daemon.
//
// In internal/serve/wal and cmd/easybod, a dropped error from Sync, Close,
// Append, Compact, Rename, or a snapshot write is a dropped durability
// guarantee: the caller acknowledged something the disk may not hold. The
// analyzer flags calls to a fixed set of durability verbs whose final
// result is an error when that error is discarded — as a bare expression
// statement, a defer/go statement, or an assignment to blank. Deliberate
// best-effort discards (forensics files, close-on-error-path) stay, but
// each must carry a reasoned //easybolint:ok errdrop directive so the
// decision is visible at the call site.
var ErrDrop = &Analyzer{
	Name:    "errdrop",
	Doc:     "discarded error from a durability-critical call (wal, easybod)",
	Applies: isDurability,
	Run:     runErrDrop,
}

// durabilityVerbs are the method/function names whose errors carry
// durability meaning in the scoped packages.
var durabilityVerbs = map[string]bool{
	"Sync": true, "Close": true, "Append": true, "Compact": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Write": true, "WriteString": true, "WriteFile": true,
	"Flush": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true,
	"Quarantine": true, "Snapshot": true,
	// Cluster ownership-transfer verbs: a dropped error here means a
	// session served from a copy whose fence, transfer, or replay silently
	// failed — a forked history waiting to happen.
	"Fence": true, "Adopt": true, "Release": true, "Forward": true,
	"BeginHandoff": true, "AbortHandoff": true, "CompleteHandoff": true,
	"InstallSnapshot": true,
	// Group-commit verbs: WaitDurable's error is the ack itself — dropping
	// it acknowledges a write the committer may have failed to sync — and a
	// dropped BeginCompact error loses the seal that makes the snapshot cut
	// safe to prune behind.
	"WaitDurable": true, "BeginCompact": true,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				pass.checkDroppedCall(s.X, "result ignored")
			case *ast.DeferStmt:
				pass.checkDroppedCall(s.Call, "error lost in defer")
			case *ast.GoStmt:
				pass.checkDroppedCall(s.Call, "error lost in go statement")
			case *ast.AssignStmt:
				pass.checkBlankAssign(s)
			}
			return true
		})
	}
}

// checkDroppedCall reports a durability call whose entire result list is
// thrown away.
func (p *Pass) checkDroppedCall(e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := calleeName(call)
	if !ok || !durabilityVerbs[name] {
		return
	}
	if !lastResultIsError(p, call) {
		return
	}
	p.Reportf(call.Pos(),
		"%s returns an error that is discarded (%s); handle it or annotate //easybolint:ok errdrop <reason>", name, how)
}

// checkBlankAssign reports `_ = call()` / `n, _ := call()` where the
// error-typed results of a durability call land in blanks.
func (p *Pass) checkBlankAssign(s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := calleeName(call)
	if !ok || !durabilityVerbs[name] {
		return
	}
	results := resultTypes(p, call)
	if len(results) != len(s.Lhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, isIdent := lhs.(*ast.Ident)
		if !isIdent || id.Name != "_" {
			continue
		}
		if isErrorType(results[i]) {
			p.Reportf(call.Pos(),
				"%s returns an error that is assigned to _; handle it or annotate //easybolint:ok errdrop <reason>", name)
			return
		}
	}
}

// calleeName extracts the bare function/method name of a call.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// resultTypes returns the call's result types (len 0 for void).
func resultTypes(p *Pass, call *ast.CallExpr) []types.Type {
	tv, ok := p.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	if tv.Type == types.Typ[types.Invalid] {
		return nil
	}
	return []types.Type{tv.Type}
}

func lastResultIsError(p *Pass, call *ast.CallExpr) bool {
	results := resultTypes(p, call)
	return len(results) > 0 && isErrorType(results[len(results)-1])
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
