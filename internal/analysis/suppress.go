package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// directivePrefix introduces an easybolint control comment. The canonical
// form is
//
//	//easybolint:ok <analyzer> <reason>
//
// placed either at the end of the flagged line or on its own line
// immediately above it (stacked directives are allowed). The reason is
// mandatory: a suppression is a documented exception to the determinism
// contract, not an opt-out.
const directivePrefix = "easybolint:"

// directive is one parsed //easybolint: comment.
type directive struct {
	pos      token.Position // of the comment itself
	tokPos   token.Pos      // same position, for Reportf
	verb     string         // "ok" is the only valid verb
	analyzer string         // first argument
	reason   string         // rest of the line
	raw      string
}

// parseDirectives collects every easybolint control comment in the package,
// valid or not; the directive analyzer reports the malformed ones, the
// suppression pass consumes the valid ones.
func parseDirectives(pkg *Package) []directive {
	var dirs []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				d := directive{pos: pkg.Fset.Position(c.Pos()), tokPos: c.Pos(), raw: c.Text}
				verb, rest, _ := strings.Cut(text, " ")
				d.verb = verb
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				d.analyzer = name
				d.reason = strings.TrimSpace(reason)
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// valid reports whether the directive is a well-formed suppression.
func (d directive) valid() bool {
	return d.verb == "ok" && known(d.analyzer) && d.reason != ""
}

// applySuppressions drops diagnostics covered by a valid ok-directive on
// the same line or on a directly preceding stack of directive lines, and
// returns the surviving diagnostics plus the set of directives that fired
// (keyed by file:line of the directive).
func applySuppressions(diags []Diagnostic, dirs []directive) (kept []Diagnostic, used map[string]bool) {
	used = map[string]bool{}
	// index valid suppressions by file -> line -> analyzers
	type key struct {
		file string
		line int
	}
	byLine := map[key][]directive{}
	for _, d := range dirs {
		if d.valid() {
			k := key{d.pos.Filename, d.pos.Line}
			byLine[k] = append(byLine[k], d)
		}
	}
	match := func(file string, line int, analyzer string) (directive, bool) {
		// Same line first, then walk up through contiguous directive-only
		// lines so several suppressions can stack above one statement.
		for l := line; l >= 1; l-- {
			ds, ok := byLine[key{file, l}]
			if l != line && !ok {
				break
			}
			for _, d := range ds {
				if d.analyzer == analyzer {
					return d, true
				}
			}
		}
		return directive{}, false
	}
	for _, dg := range diags {
		if d, ok := match(dg.Pos.Filename, dg.Pos.Line, dg.Analyzer); ok {
			used[dirKey(d)] = true
			continue
		}
		kept = append(kept, dg)
	}
	return kept, used
}

func dirKey(d directive) string {
	return d.pos.Filename + ":" + strconv.Itoa(d.pos.Line)
}

// unusedSuppressions reports valid ok-directives that suppressed nothing in
// this run: either the code they excused was fixed (remove the directive)
// or they sit in a package their analyzer does not cover.
func unusedSuppressions(pkg *Package, azs []*Analyzer, dirs []directive, used map[string]bool) []Diagnostic {
	inScope := func(name string) bool {
		for _, az := range azs {
			if az.Name == name {
				return az.Applies == nil || az.Applies(pkg.PkgPath)
			}
		}
		return false
	}
	var out []Diagnostic
	for _, d := range dirs {
		if !d.valid() || used[dirKey(d)] {
			continue
		}
		msg := "suppression matches no " + d.analyzer + " finding; remove the stale directive"
		if !inScope(d.analyzer) {
			msg = "suppression for " + d.analyzer + ", which does not run in " + pkg.PkgPath + "; remove it"
		}
		out = append(out, Diagnostic{Pos: d.pos, Analyzer: Directive.Name, Message: msg})
	}
	return out
}
