// Package analysis is easybo's project-specific static-analysis suite: the
// mechanical enforcement of the determinism boundary that every replay
// guarantee in this repo rests on.
//
// The ask/tell core re-derives every recorded ask bit-for-bit during
// snapshot restore and WAL crash recovery; a single source of hidden
// nondeterminism — map iteration order feeding float accumulation, an
// unseeded random source, a wall-clock read — silently turns recovery into
// quarantine storms. The analyzers in this package encode that invariant as
// a compiler-enforced property instead of folklore:
//
//   - maporder: flags `range` over a map in determinism-critical packages
//     unless the loop body is provably order-independent (collect-and-sort,
//     map-to-map transfer, integer counting).
//   - walltime: flags time.Now/Since/Until/timers, the global math/rand
//     source, and crypto/rand inside replay-deterministic packages.
//   - floateq: flags ==/!= on floating-point operands outside
//     math.Float64bits-style comparisons and constant guards.
//   - errdrop: flags discarded error returns from durability-critical calls
//     (Sync, Close, Append, Compact, Rename, snapshot writes) in the WAL
//     layer and the daemon.
//   - directive: validates that every //easybolint:ok suppression names a
//     real analyzer and carries a reason, so suppressions cannot rot.
//
// A finding is silenced with a directive comment on the flagged line or on
// its own line immediately above:
//
//	//easybolint:ok walltime fsync pacing only; never reaches replayed bytes
//
// The runner additionally reports suppressions that no longer match any
// finding, so stale directives are removed rather than accumulating.
//
// The suite is intentionally built on the standard library only (go/ast,
// go/types, `go list -export` for import resolution) to preserve the
// module's zero-dependency property. Only non-test files are analyzed:
// tests exercise wall-clock and tolerance-based comparison freely, and the
// replay invariant is a property of runtime code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one check in the suite.
type Analyzer struct {
	// Name is the identifier used in output and //easybolint:ok directives.
	Name string
	// Doc is a one-line description shown by easybolint -list.
	Doc string
	// Applies reports whether the analyzer runs on the given import path.
	// Nil means every package.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Pkg       *Package
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, WallTime, FloatEq, ErrDrop, Directive}
}

// analyzerNames mirrors All(); a literal so the directive analyzer's
// validity check doesn't create an initialization cycle through All.
var analyzerNames = map[string]bool{
	"maporder": true, "walltime": true, "floateq": true,
	"errdrop": true, "directive": true,
}

// known reports whether name identifies an analyzer in the suite.
func known(name string) bool { return analyzerNames[name] }

// Config tunes a Run over loaded packages.
type Config struct {
	// Analyzers is the set to run (default All()).
	Analyzers []*Analyzer
	// CheckUnused additionally reports //easybolint:ok directives that
	// suppressed nothing. Only meaningful when the full suite runs:
	// a subset run would misreport the other analyzers' suppressions
	// as stale.
	CheckUnused bool
}

// Run applies the configured analyzers to every package, resolves
// suppression directives, and returns the surviving diagnostics in
// deterministic (file, line, column, analyzer) order.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	azs := cfg.Analyzers
	if azs == nil {
		azs = All()
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, az := range azs {
			if az.Applies != nil && !az.Applies(pkg.PkgPath) {
				continue
			}
			runAnalyzer(pkg, az, &raw)
		}
		dirs := parseDirectives(pkg)
		kept, used := applySuppressions(raw, dirs)
		out = append(out, kept...)
		if cfg.CheckUnused {
			out = append(out, unusedSuppressions(pkg, azs, dirs, used)...)
		}
	}
	sortDiagnostics(out)
	return out
}

// RunAnalyzer applies a single analyzer to one package, honoring
// suppression directives but skipping the Applies scope — the self-test
// fixtures live outside the real package tree on purpose.
func RunAnalyzer(pkg *Package, az *Analyzer) []Diagnostic {
	var raw []Diagnostic
	runAnalyzer(pkg, az, &raw)
	kept, _ := applySuppressions(raw, parseDirectives(pkg))
	sortDiagnostics(kept)
	return kept
}

func runAnalyzer(pkg *Package, az *Analyzer, diags *[]Diagnostic) {
	az.Run(&Pass{
		Analyzer:  az,
		Pkg:       pkg,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Types:     pkg.Types,
		TypesInfo: pkg.Info,
		diags:     diags,
	})
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
