package analysis

// Directive validates every //easybolint: control comment in the tree, so
// suppressions cannot rot into unreadable noise:
//
//   - the verb must be "ok" (the only control form)
//   - the named analyzer must exist in the suite
//   - a non-empty reason is mandatory — a suppression is a documented
//     exception to the determinism contract, not an opt-out
//
// The runner separately reports valid suppressions that no longer match
// any finding (see unusedSuppressions), closing the other rot path: code
// gets fixed, directive stays behind.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "malformed //easybolint: suppression comments (all packages)",
	Run:  runDirective,
}

func runDirective(pass *Pass) {
	for _, d := range parseDirectives(pass.Pkg) {
		switch {
		case d.verb != "ok":
			pass.Reportf(d.tokPos,
				"unknown easybolint directive %q (only //easybolint:ok <analyzer> <reason> exists)", d.verb)
		case !known(d.analyzer):
			pass.Reportf(d.tokPos,
				"suppression names unknown analyzer %q (have maporder, walltime, floateq, errdrop, directive)", d.analyzer)
		case d.reason == "":
			pass.Reportf(d.tokPos,
				"suppression for %s has no reason; say why the exception is sound", d.analyzer)
		}
	}
}
