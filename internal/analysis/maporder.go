package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map in determinism-critical packages.
//
// Go randomizes map iteration order per run, so a map range whose order can
// reach emitted values — an ask vector, JSON/WAL bytes, float accumulation
// (float addition does not commute) — breaks the replay invariant. The
// required idiom is collect-keys-and-sort; a handful of loop-body shapes
// are provably order-independent and allowed without ceremony:
//
//   - appending keys and/or values to a slice (the collect half of
//     collect-and-sort; the subsequent sort is what makes order die)
//   - storing into another map, or delete()
//   - integer counting (n++, n += len(v), ...) — integer addition commutes
//
// Anything else needs the sorted-keys rewrite or a reasoned
// //easybolint:ok maporder directive.
var MapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "range over a map where iteration order can escape (determinism-critical packages)",
	Applies: isDeterministic,
	Run:     runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderIndependentBody(pass, rs.Body) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map is iteration-order-dependent; collect and sort keys, or annotate //easybolint:ok maporder <reason>")
			return true
		})
	}
}

// orderIndependentBody reports whether every statement in the loop body is
// one of the allowed commutative shapes.
func orderIndependentBody(pass *Pass, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if !orderIndependentStmt(pass, stmt) {
			return false
		}
	}
	return true
}

func orderIndependentStmt(pass *Pass, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- on integers commutes exactly.
		return isIntegral(pass, s.X)
	case *ast.ExprStmt:
		// delete(m, k)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.AssignStmt:
		return orderIndependentAssign(pass, s)
	}
	return false
}

func orderIndependentAssign(pass *Pass, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok.String() {
	case "=":
		// m2[k] = v — writing into a map is order-independent (last write
		// wins per key; keys from a range are distinct).
		if _, ok := lhs.(*ast.IndexExpr); ok {
			if lt, ok := pass.TypesInfo.Types[lhs.(*ast.IndexExpr).X]; ok {
				if _, isMap := lt.Type.Underlying().(*types.Map); isMap {
					return true
				}
			}
		}
		// s = append(s, ...) — the collect half of collect-and-sort.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return len(call.Args) > 0 && sameExpr(lhs, call.Args[0])
				}
			}
		}
		return false
	case "+=", "-=", "|=", "&=", "^=":
		// Integer accumulation commutes; float accumulation does not.
		return isIntegral(pass, lhs)
	}
	return false
}

// isIntegral reports whether the expression has integer type.
func isIntegral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sameExpr reports whether two expressions are the identical ident or
// selector chain — enough to recognize `s = append(s, ...)`.
func sameExpr(a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	}
	return false
}
