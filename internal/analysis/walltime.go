package analysis

import (
	"go/ast"
	"go/types"
)

// WallTime flags sources of wall-clock and ambient randomness inside
// replay-deterministic packages.
//
// A replayed session must re-derive every ask from (seed, config, tell
// order) alone. time.Now (and friends), the global math/rand source, and
// crypto/rand all read state that differs between the original run and the
// replay, so their mere presence in a deterministic package is a landmine
// even when "only used for logging today". Seeded sources
// (rand.New(rand.NewSource(seed))) are the sanctioned way to be random;
// the executor edge (internal/sched, cmd/*) is outside the boundary and
// free to read the clock.
var WallTime = &Analyzer{
	Name:    "walltime",
	Doc:     "time.Now / global math/rand / crypto/rand in replay-deterministic packages",
	Applies: isDeterministic,
	Run:     runWallTime,
}

// wallClockFuncs are the package `time` references that read or depend on
// the wall clock / a timer. Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared global source — unseeded, and since Go 1.20 randomly seeded
// per process. rand.New/NewSource/NewZipf and the Rand methods are fine.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
	// math/rand/v2 spellings
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "N": true,
}

func runWallTime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in a replay-deterministic package; move it across the executor boundary or annotate //easybolint:ok walltime <reason>", name)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[name] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the process-global random source; thread a seeded *rand.Rand instead, or annotate //easybolint:ok walltime <reason>", name)
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is nondeterministic by design; a replay-deterministic package cannot depend on it, or annotate //easybolint:ok walltime <reason>", name)
			}
			return true
		})
	}
}
