// Package errdrop seeds violations for the errdrop analyzer self-test.
package errdrop

import "os"

type wlog struct{ f *os.File }

func (l *wlog) Sync() error { return l.f.Sync() }

func (l *wlog) Append(b []byte) (int, error) { return l.f.Write(b) }

func drops(l *wlog) {
	l.Sync()          // want errdrop "Sync"
	_ = l.Sync()      // want errdrop "Sync"
	defer l.f.Close() // want errdrop "Close"
}

func renames(a, b string) {
	os.Rename(a, b) // want errdrop "Rename"
}

func blankInTuple(l *wlog, b []byte) int {
	n, _ := l.Append(b) // want errdrop "Append"
	return n
}

// Capturing the error is the point.
func captured(l *wlog) error { return l.Sync() }

func capturedTuple(l *wlog, b []byte) error {
	_, err := l.Append(b)
	return err
}

// Names outside the durability set are not this analyzer's business.
func notDurability() {
	println("x")
}

func suppressedDrop(l *wlog) {
	//easybolint:ok errdrop fixture: best-effort on purpose to test suppression
	_ = l.Sync()
}
