// Package errdrop seeds violations for the errdrop analyzer self-test.
package errdrop

import "os"

type wlog struct{ f *os.File }

func (l *wlog) Sync() error { return l.f.Sync() }

func (l *wlog) Append(b []byte) (int, error) { return l.f.Write(b) }

func drops(l *wlog) {
	l.Sync()          // want errdrop "Sync"
	_ = l.Sync()      // want errdrop "Sync"
	defer l.f.Close() // want errdrop "Close"
}

func renames(a, b string) {
	os.Rename(a, b) // want errdrop "Rename"
}

func blankInTuple(l *wlog, b []byte) int {
	n, _ := l.Append(b) // want errdrop "Append"
	return n
}

// Capturing the error is the point.
func captured(l *wlog) error { return l.Sync() }

func capturedTuple(l *wlog, b []byte) error {
	_, err := l.Append(b)
	return err
}

// Names outside the durability set are not this analyzer's business.
func notDurability() {
	println("x")
}

func suppressedDrop(l *wlog) {
	//easybolint:ok errdrop fixture: best-effort on purpose to test suppression
	_ = l.Sync()
}

// Cluster ownership-transfer verbs: a dropped error silently forks a
// session between two nodes.
type xfer struct{}

func (x *xfer) Fence(epoch uint64, owner string) error      { return nil }
func (x *xfer) Adopt(id, self string) (int, error)          { return 0, nil }
func (x *xfer) BeginHandoff(id, to string) ([]byte, error)  { return nil, nil }
func (x *xfer) AbortHandoff(id, self string) error          { return nil }
func (x *xfer) CompleteHandoff(id string, rm bool) error    { return nil }
func (x *xfer) InstallSnapshot(snap []byte) (int, error)    { return 0, nil }
func (x *xfer) Release(id string) error                     { return nil }
func (x *xfer) Forward(id string, body []byte) (int, error) { return 0, nil }

func dropsTransfers(x *xfer) {
	x.Fence(2, "n1")             // want errdrop "Fence"
	_ = x.AbortHandoff("s", "a") // want errdrop "AbortHandoff"
	defer x.Release("s")         // want errdrop "Release"
	n, _ := x.Forward("s", nil)  // want errdrop "Forward"
	_ = n
	_, _ = x.Adopt("s", "a") // want errdrop "Adopt"
}

func capturedTransfers(x *xfer) error {
	if err := x.CompleteHandoff("s", false); err != nil {
		return err
	}
	_, err := x.InstallSnapshot(nil)
	return err
}

func suppressedTransfer(x *xfer) {
	//easybolint:ok errdrop fixture: abort on an already-failed path is best-effort
	_ = x.AbortHandoff("s", "a")
}

// Group-commit verbs: WaitDurable's error IS the durability ack, and a
// dropped BeginCompact error prunes behind an unsealed cut.
func (l *wlog) WaitDurable(seq uint64) error { return nil }

func (l *wlog) BeginCompact() (func() error, error) { return nil, nil }

func dropsCommits(l *wlog) {
	l.WaitDurable(7)        // want errdrop "WaitDurable"
	_ = l.WaitDurable(7)    // want errdrop "WaitDurable"
	_, _ = l.BeginCompact() // want errdrop "BeginCompact"
	defer l.WaitDurable(9)  // want errdrop "WaitDurable"
	go l.WaitDurable(11)    // want errdrop "WaitDurable"
}

func capturedCommits(l *wlog) error {
	commit, err := l.BeginCompact()
	if err != nil {
		return err
	}
	_ = commit
	return l.WaitDurable(3)
}
