// Package floateq seeds violations for the floateq analyzer self-test.
package floateq

import "math"

func computed(a, b float64) bool { return a == b } // want floateq "=="

func neq(a, b float64) bool { return a != b } // want floateq "!="

func narrow(a, b float32) bool { return a == b } // want floateq "=="

func cplx(a, b complex128) bool { return a == b } // want floateq "=="

type pt struct{ X, Y float64 }

func structs(a, b pt) bool { return a == b } // want floateq "=="

func arrays(a, b [2]float64) bool { return a == b } // want floateq "=="

// Comparison against a compile-time constant is a sentinel guard, allowed.
func sentinel(x float64) bool { return x == 0 }

func sentinelNamed(x float64) bool {
	const unset = -1.0
	return x != unset
}

// The sanctioned idiom: uint64 bit patterns, never floats.
func bits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// Non-float comparisons are out of scope.
func ints(a, b int) bool { return a == b }

func strs(a, b string) bool { return a == b }

// Pointers compare by identity, not float contents.
func ptrs(a, b *pt) bool { return a == b }

func suppressedCmp(a, b float64) bool {
	//easybolint:ok floateq fixture: exact equality on purpose to test suppression
	return a == b
}
