// Package maporder seeds violations for the maporder analyzer self-test.
// Comments of the form `// want <analyzer>` mark lines the analyzer must
// flag; every other line must stay silent.
package maporder

import "sort"

// Float accumulation over map order: the canonical violation.
func emitSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want maporder
		sum += v
	}
	return sum
}

// Calling out of the loop body lets order escape arbitrarily.
func emitCalls(m map[int]string, f func(string)) {
	for _, v := range m { // want maporder
		f(v)
	}
}

// The collect half of collect-and-sort is allowed without ceremony.
func collectAndSort(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Map-to-map transfer is order-independent (distinct keys, last write wins).
func transfer(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Integer counting commutes exactly.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func totalLen(m map[string][]int) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}

// delete() during range is explicitly sanctioned by the spec and
// order-independent.
func clear2(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// A reasoned directive silences a genuine violation.
func suppressed(m map[string]float64) float64 {
	var sum float64
	//easybolint:ok maporder fixture: order-dependent on purpose to test suppression
	for _, v := range m {
		sum += v
	}
	return sum
}
