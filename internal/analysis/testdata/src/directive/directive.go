// Package directive seeds malformed control comments for the directive
// analyzer self-test. The expected findings are asserted explicitly in
// analysis_test.go — a trailing `// want` marker would become part of the
// directive text itself.
package directive

//easybolint:nolint maporder wrong verb

//easybolint:ok nosuchanalyzer with a reason

//easybolint:ok floateq

// A well-formed suppression is not a directive finding (staleness is the
// runner's job, not this analyzer's).
//
//easybolint:ok walltime fixture: valid form
func ok() {}
