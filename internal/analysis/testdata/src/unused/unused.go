// Package unused seeds a stale suppression for the runner's
// unused-directive check: the directive names a real analyzer with a
// reason, but nothing on the next line is flagged anymore.
package unused

import "sort"

//easybolint:ok maporder stale: the loop below is the allowed collect shape
func sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
