// Package walltime seeds violations for the walltime analyzer self-test.
package walltime

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func now() int64 { return time.Now().UnixNano() } // want walltime "time.Now"

func elapsed(t0 time.Time) time.Duration { return time.Since(t0) } // want walltime "time.Since"

func ticker(d time.Duration) *time.Ticker { return time.NewTicker(d) } // want walltime "time.NewTicker"

func globalRand() float64 { return rand.Float64() } // want walltime "rand.Float64"

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want walltime "rand.Shuffle"
}

func entropy(b []byte) {
	crand.Read(b) // want walltime "crypto/rand.Read"
}

// Seeded sources are the sanctioned way to be random.
func seeded(seed int64) float64 { return rand.New(rand.NewSource(seed)).Float64() }

// Duration arithmetic and type references never read the clock.
func durationMath(d time.Duration) time.Duration { return 2 * d }

func parse(s string) (time.Time, error) { return time.Parse(time.RFC3339, s) }

func suppressedNow() time.Time {
	//easybolint:ok walltime fixture: wall clock on purpose to test suppression
	return time.Now()
}
