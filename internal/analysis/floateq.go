package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != on floating-point (or float-containing) operands
// in determinism-critical packages.
//
// Two floats that "should" be equal rarely are after independent
// recomputation, and NaN breaks == entirely — which is why every replay
// check in this repo (snapshot restore, WAL recovery, the crash harness)
// compares math.Float64bits instead. Two shapes stay legal without
// annotation:
//
//   - comparison against a compile-time constant (x == 0, x != 1): a
//     sentinel/guard on a stored value, not equality of two computations
//   - comparisons whose operands are not floats (Float64bits comparisons
//     are uint64 and never reach this analyzer)
//
// Everything else — computed-vs-computed float equality, == on structs or
// arrays with float fields — needs math.Float64bits, an explicit
// tolerance, or a reasoned //easybolint:ok floateq directive.
var FloatEq = &Analyzer{
	Name:    "floateq",
	Doc:     "==/!= on floating-point operands outside Float64bits-style comparisons",
	Applies: isDeterministic,
	Run:     runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := pass.TypesInfo.Types[be.X]
			ty, oky := pass.TypesInfo.Types[be.Y]
			if !okx || !oky {
				return true
			}
			// A constant operand means a sentinel guard, not equality of two
			// computed values.
			if tx.Value != nil || ty.Value != nil {
				return true
			}
			if containsFloat(tx.Type) || containsFloat(ty.Type) {
				pass.Reportf(be.OpPos,
					"%s on floating-point operands is replay-hostile (rounding, NaN); compare math.Float64bits, use a tolerance, or annotate //easybolint:ok floateq <reason>", be.Op)
			}
			return true
		})
	}
}

// containsFloat reports whether == on a value of type t compares any
// floating-point bits: floats and complexes themselves, and structs/arrays
// with float elements. Pointers, channels, and interfaces compare by
// identity, not contents, so they don't count.
func containsFloat(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Info()&(types.IsFloat|types.IsComplex) != 0
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}
