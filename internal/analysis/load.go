package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks the packages matching patterns,
// resolving every import — standard library included — through compiled
// export data from `go list -deps -export`, so no dependency on
// golang.org/x/tools is needed. dir is the working directory for the go
// command ("" = current). Test files are not loaded: the determinism
// invariants are properties of runtime code.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, m := range metas {
		if m.DepOnly {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := typecheck(fset, imp, m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listPkg
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// typecheck parses a package's non-test files and type-checks them against
// export data for all imports.
func typecheck(fset *token.FileSet, imp types.Importer, m listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(m.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", m.ImportPath, err)
	}
	return &Package{
		PkgPath: m.ImportPath,
		Dir:     m.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
