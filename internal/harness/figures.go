package harness

import (
	"fmt"
	"math"
	"strings"

	"easybo/internal/acq"
	"easybo/internal/bo"
	"easybo/internal/sched"
)

// Curve is a labelled time series (mean best-so-far vs virtual time).
type Curve struct {
	Label string
	T     []float64
	Y     []float64
}

// Figure is the result of RunFigure: the paper's Figures 4 / 6.
type Figure struct {
	Name   string
	Curves []Curve
}

// RunFigure reproduces Figures 4/6: mean best-FOM-vs-wall-clock curves for
// pBO, pHCBO and EasyBO at the given batch size, averaged over Spec.Runs
// runs. The entries present in the spec are ignored; the figure algorithms
// are fixed by the paper.
func RunFigure(spec Spec, batch int, points int) (*Figure, error) {
	if points <= 0 {
		points = 120
	}
	spec.Entries = []Entry{
		{Algo: bo.AlgoPBO, Batch: batch},
		{Algo: bo.AlgoPHCBO, Batch: batch},
		{Algo: bo.AlgoEasyBO, Batch: batch},
	}
	tbl, err := RunTable(spec)
	if err != nil {
		return nil, err
	}
	// Common time grid up to the slowest algorithm's makespan.
	var tMax float64
	for _, hs := range tbl.Histories {
		for _, h := range hs {
			if h.Makespan > tMax {
				tMax = h.Makespan
			}
		}
	}
	grid := make([]float64, points)
	for i := range grid {
		grid[i] = tMax * float64(i+1) / float64(points)
	}
	fig := &Figure{Name: spec.Name}
	for _, e := range spec.Entries {
		label := e.Algo.Label(e.Batch)
		mean := make([]float64, points)
		for _, h := range tbl.Histories[label] {
			c := h.CurveVsTime(grid)
			for i, v := range c {
				if math.IsInf(v, -1) {
					// Before the first completion: carry the eventual first
					// observation backward so means stay finite.
					v = h.Records[0].Y
				}
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(len(tbl.Histories[label]))
		}
		fig.Curves = append(fig.Curves, Curve{Label: label, T: grid, Y: mean})
	}
	return fig, nil
}

// TimeReduction reports, for each non-EasyBO curve, the relative time saved
// by EasyBO to first reach that curve's final mean value — the percentages
// annotated on the paper's Figures 4 and 6.
func (f *Figure) TimeReduction() map[string]float64 {
	var easy *Curve
	for i := range f.Curves {
		if strings.HasPrefix(f.Curves[i].Label, "EasyBO") {
			easy = &f.Curves[i]
		}
	}
	out := map[string]float64{}
	if easy == nil {
		return out
	}
	timeTo := func(c *Curve, level float64) (float64, bool) {
		for i, y := range c.Y {
			if y >= level {
				return c.T[i], true
			}
		}
		return 0, false
	}
	for i := range f.Curves {
		c := &f.Curves[i]
		if c == easy {
			continue
		}
		level := c.Y[len(c.Y)-1]
		tRef, ok1 := timeTo(c, level)
		tEasy, ok2 := timeTo(easy, level)
		if ok1 && ok2 && tRef > 0 {
			out[c.Label] = 1 - tEasy/tRef
		}
	}
	return out
}

// CSV renders the figure data.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("time_s")
	for _, c := range f.Curves {
		fmt.Fprintf(&b, ",%s", c.Label)
	}
	b.WriteByte('\n')
	if len(f.Curves) == 0 {
		return b.String()
	}
	for i := range f.Curves[0].T {
		fmt.Fprintf(&b, "%g", f.Curves[0].T[i])
		for _, c := range f.Curves {
			fmt.Fprintf(&b, ",%g", c.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCIIPlot renders the curves as a terminal plot.
func (f *Figure) ASCIIPlot(width, height int) string {
	if width <= 10 {
		width = 78
	}
	if height <= 4 {
		height = 22
	}
	var yMin, yMax = math.Inf(1), math.Inf(-1)
	var tMax float64
	for _, c := range f.Curves {
		for i := range c.T {
			if c.Y[i] < yMin {
				yMin = c.Y[i]
			}
			if c.Y[i] > yMax {
				yMax = c.Y[i]
			}
			if c.T[i] > tMax {
				tMax = c.T[i]
			}
		}
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	marks := []byte{'*', 'o', '+', 'x', '#'}
	gridC := make([][]byte, height)
	for r := range gridC {
		gridC[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range f.Curves {
		m := marks[ci%len(marks)]
		for i := range c.T {
			col := int(c.T[i] / tMax * float64(width-1))
			row := height - 1 - int((c.Y[i]-yMin)/(yMax-yMin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				gridC[row][col] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (best FOM vs virtual time)\n", f.Name)
	for r := 0; r < height; r++ {
		y := yMax - (yMax-yMin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s\n", y, string(gridC[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  0%*s%.0fs\n", "", width-8, "", tMax)
	for ci, c := range f.Curves {
		fmt.Fprintf(&b, "    %c = %s\n", marks[ci%len(marks)], c.Label)
	}
	return b.String()
}

// ScheduleDemo reproduces Figure 1: the worker-occupancy timelines of
// synchronous and asynchronous dispatch for the same 9 heterogeneous jobs
// on 3 workers, rendered as an ASCII Gantt chart.
func ScheduleDemo() string {
	costs := []float64{4, 7, 3, 5, 2, 6, 3, 4, 5}
	const b = 3
	var out strings.Builder
	render := func(title string, recs []sched.Result, makespan float64) {
		fmt.Fprintf(&out, "%s (makespan %.0fs)\n", title, makespan)
		const scale = 2 // columns per second
		for w := 0; w < b; w++ {
			line := []byte(strings.Repeat(".", int(makespan)*scale+1))
			for _, r := range recs {
				if r.Worker != w {
					continue
				}
				for t := int(r.Start) * scale; t < int(r.End)*scale && t < len(line); t++ {
					line[t] = byte('1' + r.ID%9)
				}
			}
			fmt.Fprintf(&out, "  worker %d |%s|\n", w, string(line))
		}
	}
	// Synchronous: batches of 3, wait for the slowest.
	var syncRecs []sched.Result
	now := 0.0
	id := 0
	for i := 0; i < len(costs); i += b {
		batchEnd := now
		for j := i; j < i+b && j < len(costs); j++ {
			w := j - i
			r := sched.Result{ID: id, Start: now, End: now + costs[j], Worker: w}
			id++
			syncRecs = append(syncRecs, r)
			if r.End > batchEnd {
				batchEnd = r.End
			}
		}
		now = batchEnd
	}
	render("Synchronous batch (B=3): idle workers wait for the slowest job", syncRecs, now)

	// Asynchronous: greedy dispatch through the virtual executor.
	i := 0
	ex := sched.NewVirtual(b, func(x []float64) (float64, float64) { return 0, x[0] })
	var asyncRecs []sched.Result
	for i < len(costs) && ex.Idle() > 0 {
		_ = ex.Launch([]float64{costs[i]})
		i++
	}
	for {
		r, ok := ex.Wait()
		if !ok {
			break
		}
		asyncRecs = append(asyncRecs, r)
		if i < len(costs) {
			_ = ex.Launch([]float64{costs[i]})
			i++
		}
	}
	out.WriteByte('\n')
	render("Asynchronous (EasyBO): a new query is issued the moment a worker idles", asyncRecs, ex.Now())
	fmt.Fprintf(&out, "\nSame 9 jobs, same 3 workers: async finishes sooner; savings grow with runtime dispersion.\n")
	return out.String()
}

// WeightDensityDemo reproduces Figure 2: the sampling density of the
// exploration weight w under κ ~ U[0, λ] with w = κ/(κ+1), versus the
// uniform ladder pBO uses, as an ASCII histogram.
func WeightDensityDemo(lambda float64) string {
	if lambda <= 0 {
		lambda = acq.DefaultLambda
	}
	const bins = 20
	var b strings.Builder
	fmt.Fprintf(&b, "Density of w = κ/(κ+1), κ ~ U[0, %.1f]  (paper Fig. 2: mass concentrates near w→1)\n", lambda)
	wMax := lambda / (lambda + 1)
	var peak float64
	dens := make([]float64, bins)
	for i := range dens {
		w := (float64(i) + 0.5) / bins * wMax
		dens[i] = acq.WeightDensity(w, lambda)
		if dens[i] > peak {
			peak = dens[i]
		}
	}
	for i, d := range dens {
		w0 := float64(i) / bins * wMax
		w1 := float64(i+1) / bins * wMax
		bar := int(d / peak * 56)
		fmt.Fprintf(&b, "  w ∈ [%.3f,%.3f) %7.3f |%s\n", w0, w1, d, strings.Repeat("█", bar))
	}
	fmt.Fprintf(&b, "  (pBO's fixed ladder w_i = (i-1)/(B-1) spreads uniformly instead)\n")
	return b.String()
}
