package harness

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"easybo/internal/bo"
	"easybo/internal/objective"
)

// tinySpec keeps harness tests fast: a cheap synthetic problem with
// heterogeneous costs and small budgets.
func tinySpec(name string, entries []Entry, runs int) Spec {
	p := objective.WithCost(objective.Branin(), func(x []float64) float64 {
		return 5 + 4*math.Abs(math.Sin(x[0]))
	})
	return Spec{
		Name: name, Problem: p, Entries: entries,
		Runs: runs, MaxEvals: 25, InitPoints: 10, BaseSeed: 3,
		FitIters: 10, RefitEvery: 10, Parallel: 4,
	}
}

func TestRunTableShapeAndDeterminism(t *testing.T) {
	entries := []Entry{
		{Algo: bo.AlgoRandom, Batch: 2},
		{Algo: bo.AlgoEasyBO, Batch: 3},
		{Algo: bo.AlgoPBO, Batch: 3},
	}
	run := func() *Table {
		tbl, err := RunTable(tinySpec("t", entries, 3))
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	t1 := run()
	t2 := run()
	if len(t1.Rows) != 3 {
		t.Fatalf("rows = %d", len(t1.Rows))
	}
	for i, r := range t1.Rows {
		if r.Runs != 3 || math.IsNaN(r.Mean) || r.MeanTime <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.Best < r.Worst {
			t.Fatalf("best < worst in %+v", r)
		}
		// Parallel execution must not break determinism.
		if r.Mean != t2.Rows[i].Mean || r.MeanTime != t2.Rows[i].MeanTime {
			t.Fatal("table not deterministic across parallel runs")
		}
	}
	if t1.Row("EasyBO-3") == nil || t1.Row("nope") != nil {
		t.Fatal("Row lookup wrong")
	}
	if len(t1.Histories["EasyBO-3"]) != 3 {
		t.Fatal("histories missing")
	}
}

func TestRunTableDuplicateEntries(t *testing.T) {
	// Two identical entries must keep distinct result rows. Before jobs
	// carried the entry position, a map[Entry]int collapsed duplicates onto
	// one index: the other row silently never received its histories.
	entries := []Entry{
		{Algo: bo.AlgoRandom, Batch: 2},
		{Algo: bo.AlgoRandom, Batch: 2},
		{Algo: bo.AlgoEasyBOA, Batch: 2},
	}
	tbl, err := RunTable(tinySpec("dup", entries, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	a, b := tbl.Rows[0], tbl.Rows[1]
	// Same entry, same seeds: the duplicate rows must agree exactly — and,
	// critically, both must be populated.
	if math.IsNaN(a.Mean) || math.IsNaN(b.Mean) || a.MeanTime <= 0 || b.MeanTime <= 0 {
		t.Fatalf("duplicate entry lost its results: %+v vs %+v", a, b)
	}
	if a.Mean != b.Mean || a.Best != b.Best || a.MeanTime != b.MeanTime {
		t.Fatalf("duplicate entries disagree: %+v vs %+v", a, b)
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tbl, err := RunTable(tinySpec("fmt", []Entry{{Algo: bo.AlgoRandom, Batch: 1}}, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Format()
	if !strings.Contains(s, "Random") || !strings.Contains(s, "Best") {
		t.Fatalf("format output:\n%s", s)
	}
	c := tbl.CSV()
	if !strings.HasPrefix(c, "algo,batch,best") || !strings.Contains(c, "Random,1") {
		t.Fatalf("csv output:\n%s", c)
	}
}

func TestSpeedups(t *testing.T) {
	entries := []Entry{
		{Algo: bo.AlgoDE, Batch: 1, MaxEvals: 100},
		{Algo: bo.AlgoEasyBOSP, Batch: 5},
		{Algo: bo.AlgoEasyBO, Batch: 5},
	}
	tbl, err := RunTable(tinySpec("spd", entries, 2))
	if err != nil {
		t.Fatal(err)
	}
	sp := tbl.Speedups()
	if len(sp) == 0 {
		t.Fatal("no speedups derived")
	}
	var sawDE, sawSP bool
	for _, s := range sp {
		if s.Factor <= 0 {
			t.Fatalf("bad factor %+v", s)
		}
		if s.Reference == "DE" {
			sawDE = true
			if s.Factor < 2 { // DE runs 4x the evals sequentially
				t.Fatalf("DE speedup %v implausibly low", s.Factor)
			}
		}
		if s.Reference == "EasyBO-SP-5" {
			sawSP = true
			if s.Factor < 1 {
				t.Fatalf("async vs sync factor %v < 1", s.Factor)
			}
		}
	}
	if !sawDE || !sawSP {
		t.Fatalf("missing expected comparisons: %+v", sp)
	}
}

func TestPaperEntriesLayout(t *testing.T) {
	e := PaperEntries(20000)
	if len(e) != 4+18 {
		t.Fatalf("entries = %d, want 22", len(e))
	}
	if e[0].Algo != bo.AlgoDE || e[0].MaxEvals != 20000 {
		t.Fatalf("first entry %+v", e[0])
	}
	// Batches must appear in 5, 10, 15 groups of six.
	for gi, b := range []int{5, 10, 15} {
		for k := 0; k < 6; k++ {
			if e[4+gi*6+k].Batch != b {
				t.Fatalf("entry %d has batch %d, want %d", 4+gi*6+k, e[4+gi*6+k].Batch, b)
			}
		}
	}
}

func TestRunFigure(t *testing.T) {
	spec := tinySpec("fig", nil, 2)
	fig, err := RunFigure(spec, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		if len(c.T) != 40 || len(c.Y) != 40 {
			t.Fatalf("grid size wrong for %s", c.Label)
		}
		// Monotone non-decreasing best-so-far.
		for i := 1; i < len(c.Y); i++ {
			if c.Y[i] < c.Y[i-1]-1e-9 {
				t.Fatalf("%s curve decreases at %d", c.Label, i)
			}
		}
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "EasyBO-3") || !strings.Contains(csv, "pBO-3") {
		t.Fatalf("figure csv:\n%s", csv)
	}
	plot := fig.ASCIIPlot(60, 12)
	if !strings.Contains(plot, "EasyBO-3") || len(strings.Split(plot, "\n")) < 12 {
		t.Fatalf("ascii plot:\n%s", plot)
	}
	// Time reductions exist for every reference curve whose final level the
	// EasyBO curve reaches (with this tiny budget that may be a subset).
	red := fig.TimeReduction()
	if len(red) == 0 {
		t.Fatalf("no time reductions derived: %+v", red)
	}
	for k, v := range red {
		if math.IsNaN(v) || v >= 1 {
			t.Fatalf("bad reduction %s=%v", k, v)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{45, "45s"}, {75, "1m15s"}, {3660, "1h1m0s"}, {780072, "216h41m12s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.sec); got != c.want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}

func TestScheduleDemo(t *testing.T) {
	s := ScheduleDemo()
	if !strings.Contains(s, "Synchronous") || !strings.Contains(s, "Asynchronous") {
		t.Fatalf("schedule demo:\n%s", s)
	}
	// Async makespan must not exceed sync makespan in the demo.
	var times []float64
	for _, line := range strings.Split(s, "\n") {
		if i := strings.Index(line, "makespan "); i >= 0 {
			var v float64
			if _, err := fmt.Sscanf(line[i:], "makespan %fs", &v); err == nil {
				times = append(times, v)
			}
		}
	}
	if len(times) != 2 || times[1] > times[0] {
		t.Fatalf("demo makespans %v", times)
	}
}

func TestWeightDensityDemo(t *testing.T) {
	s := WeightDensityDemo(0)
	if !strings.Contains(s, "κ") || !strings.Contains(s, "█") {
		t.Fatalf("weight density demo:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// The histogram must be visibly increasing: last bin bar longer than first.
	first := strings.Count(lines[1], "█")
	last := strings.Count(lines[len(lines)-2], "█")
	if last <= first {
		t.Fatalf("density should increase toward w=1: first=%d last=%d", first, last)
	}
}

func TestTableSignificance(t *testing.T) {
	tbl, err := RunTable(tinySpec("sig", []Entry{
		{Algo: bo.AlgoRandom, Batch: 1},
		{Algo: bo.AlgoEasyBOSeq, Batch: 1},
	}, 4))
	if err != nil {
		t.Fatal(err)
	}
	p := tbl.Significance("EasyBO", "Random")
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Fatalf("p = %v", p)
	}
	if tbl.Significance("EasyBO", "missing") != 1 {
		t.Fatal("missing row must report p=1")
	}
}
