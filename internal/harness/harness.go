// Package harness reproduces the paper's experimental artifacts: Table I
// (op-amp) and Table II (class-E) with their Best/Worst/Mean/Std/Time
// columns, the best-FOM-versus-wall-clock curves of Figures 4 and 6, the
// async/sync schedule illustration of Figure 1, and the weight-density
// illustration of Figure 2. Runs are distributed over CPU cores and are
// deterministic given the base seed.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"easybo/internal/bo"
	"easybo/internal/objective"
	"easybo/internal/stats"
)

// Entry is one table row to produce: an algorithm at a batch size.
type Entry struct {
	Algo     bo.Algorithm
	Batch    int
	MaxEvals int // overrides Spec.MaxEvals when > 0 (used for DE)
}

// Spec describes a full table experiment.
type Spec struct {
	Name       string
	Problem    *objective.Problem
	Entries    []Entry
	Runs       int   // repetitions per entry (paper: 20)
	MaxEvals   int   // simulations per run including init (150 / 450)
	InitPoints int   // initial design size (20)
	BaseSeed   int64 // master seed
	Parallel   int   // concurrent runs (default NumCPU)
	// Surrogate cost knobs, forwarded to bo.Config.
	FitIters   int
	RefitEvery int
	// Progress, if non-nil, receives one line per finished run.
	Progress func(label string, run int, best float64)
}

// Row is one aggregated table row.
type Row struct {
	Label                  string
	Algo                   bo.Algorithm
	Batch                  int
	Best, Worst, Mean, Std float64
	MeanTime               float64 // virtual seconds
	Runs                   int
}

// Table is the result of RunTable.
type Table struct {
	Spec      Spec
	Rows      []Row
	Histories map[string][]*bo.History // by row label, in run order
}

// RunTable executes Spec.Runs runs of every entry, in parallel across CPU
// cores, and aggregates the paper's table columns.
func RunTable(spec Spec) (*Table, error) {
	if spec.Runs <= 0 {
		spec.Runs = 20
	}
	if spec.Parallel <= 0 {
		spec.Parallel = runtime.NumCPU()
	}
	if spec.MaxEvals <= 0 {
		spec.MaxEvals = 150
	}
	if spec.InitPoints <= 0 {
		spec.InitPoints = 20
	}

	// Jobs carry the entry's position: two identical Entry values (the same
	// algorithm/batch listed twice, e.g. for a replication column) must keep
	// distinct result rows, so indexing by Entry value would be wrong.
	type job struct {
		entryIdx int
		entry    Entry
		run      int
	}
	type outcome struct {
		entryIdx int
		run      int
		hist     *bo.History
		err      error
	}
	var jobs []job
	for i, e := range spec.Entries {
		for r := 0; r < spec.Runs; r++ {
			jobs = append(jobs, job{i, e, r})
		}
	}

	results := make([][]*bo.History, len(spec.Entries))
	for i := range results {
		results[i] = make([]*bo.History, spec.Runs)
	}

	jobCh := make(chan job)
	outCh := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < spec.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cfg := bo.Config{
					Algo:       j.entry.Algo,
					BatchSize:  j.entry.Batch,
					InitPoints: spec.InitPoints,
					MaxEvals:   spec.MaxEvals,
					Seed:       spec.BaseSeed + 7919*int64(j.run+1),
					FitIters:   spec.FitIters,
					RefitEvery: spec.RefitEvery,
				}
				if j.entry.MaxEvals > 0 {
					cfg.MaxEvals = j.entry.MaxEvals
				}
				h, err := bo.Run(spec.Problem, cfg)
				outCh <- outcome{j.entryIdx, j.run, h, err}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
		close(outCh)
	}()

	var firstErr error
	for o := range outCh {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		results[o.entryIdx][o.run] = o.hist
		if spec.Progress != nil {
			e := spec.Entries[o.entryIdx]
			spec.Progress(e.Algo.Label(e.Batch), o.run, o.hist.BestY)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	tbl := &Table{Spec: spec, Histories: map[string][]*bo.History{}}
	for i, e := range spec.Entries {
		label := e.Algo.Label(e.Batch)
		var bests, times []float64
		for _, h := range results[i] {
			bests = append(bests, h.BestY)
			times = append(times, h.Makespan)
		}
		s := stats.Summarize(bests)
		tbl.Rows = append(tbl.Rows, Row{
			Label: label, Algo: e.Algo, Batch: e.Batch,
			Best: s.Best, Worst: s.Worst, Mean: s.Mean, Std: s.Std,
			MeanTime: stats.Mean(times), Runs: spec.Runs,
		})
		tbl.Histories[label] = results[i]
	}
	return tbl, nil
}

// FormatDuration renders virtual seconds in the paper's h/m/s style.
func FormatDuration(sec float64) string {
	s := int(math.Round(sec))
	h := s / 3600
	m := (s % 3600) / 60
	r := s % 60
	switch {
	case h > 0:
		return fmt.Sprintf("%dh%dm%ds", h, m, r)
	case m > 0:
		return fmt.Sprintf("%dm%ds", m, r)
	default:
		return fmt.Sprintf("%ds", r)
	}
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d runs, %d sims (init %d)\n",
		t.Spec.Name, t.Spec.Runs, t.Spec.MaxEvals, t.Spec.InitPoints)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %10s %14s\n",
		"Algo", "Best", "Worst", "Mean", "Std", "Time")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %12.3f %12.3f %12.3f %10.3f %14s\n",
			r.Label, r.Best, r.Worst, r.Mean, r.Std, FormatDuration(r.MeanTime))
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("algo,batch,best,worst,mean,std,mean_time_s,runs\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%g,%g,%g,%g,%g,%d\n",
			r.Label, r.Batch, r.Best, r.Worst, r.Mean, r.Std, r.MeanTime, r.Runs)
	}
	return b.String()
}

// Row returns the row with the given label (nil if absent).
func (t *Table) Row(label string) *Row {
	for i := range t.Rows {
		if t.Rows[i].Label == label {
			return &t.Rows[i]
		}
	}
	return nil
}

// Speedup holds the headline time ratios the paper quotes (its abstract's
// "7.35× vs sync batch BO" and "1935× vs DE" claims).
type Speedup struct {
	Label     string
	Reference string
	Factor    float64 // reference mean time / label mean time
}

// Speedups derives time ratios of every EasyBO row against DE and against
// the synchronous algorithms at the same batch size.
func (t *Table) Speedups() []Speedup {
	var out []Speedup
	de := t.Row("DE")
	for _, r := range t.Rows {
		if r.Algo != bo.AlgoEasyBO && r.Algo != bo.AlgoEasyBOSeq {
			continue
		}
		if de != nil && r.MeanTime > 0 {
			out = append(out, Speedup{r.Label, "DE", de.MeanTime / r.MeanTime})
		}
		for _, ref := range []bo.Algorithm{bo.AlgoPBO, bo.AlgoPHCBO, bo.AlgoEasyBOSP} {
			if rr := t.Row(ref.Label(r.Batch)); rr != nil && r.MeanTime > 0 && r.Algo == bo.AlgoEasyBO {
				out = append(out, Speedup{r.Label, rr.Label, rr.MeanTime / r.MeanTime})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Reference < out[j].Reference
	})
	return out
}

// PaperEntries returns the paper's table layout: the sequential block (DE,
// LCB, EI, EasyBO) followed by the six batch algorithms at B = 5, 10, 15.
// deEvals is the DE simulation budget (20000 for Table I, 15000 for II).
func PaperEntries(deEvals int) []Entry {
	entries := []Entry{
		{Algo: bo.AlgoDE, Batch: 1, MaxEvals: deEvals},
		{Algo: bo.AlgoLCB, Batch: 1},
		{Algo: bo.AlgoEI, Batch: 1},
		{Algo: bo.AlgoEasyBOSeq, Batch: 1},
	}
	for _, b := range []int{5, 10, 15} {
		for _, a := range []bo.Algorithm{
			bo.AlgoPBO, bo.AlgoPHCBO, bo.AlgoEasyBOS, bo.AlgoEasyBOA, bo.AlgoEasyBOSP, bo.AlgoEasyBO,
		} {
			entries = append(entries, Entry{Algo: a, Batch: b})
		}
	}
	return entries
}

// Significance runs a two-sided Mann–Whitney rank-sum test between the
// best-FOM distributions of two rows, returning the p-value (1 when either
// row is missing). Used to state whether an algorithm's advantage in the
// table is statistically meaningful at the chosen run count.
func (t *Table) Significance(labelA, labelB string) float64 {
	ha, ok1 := t.Histories[labelA]
	hb, ok2 := t.Histories[labelB]
	if !ok1 || !ok2 {
		return 1
	}
	bests := func(hs []*bo.History) []float64 {
		out := make([]float64, 0, len(hs))
		for _, h := range hs {
			out = append(out, h.BestY)
		}
		return out
	}
	_, p := stats.MannWhitneyU(bests(ha), bests(hb))
	return p
}
