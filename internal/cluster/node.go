package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"easybo/internal/serve"
)

// Config declares one cluster node.
type Config struct {
	// Self is this node's member id; it must appear in Table.
	Self string
	// Table is the versioned membership the ring is built from.
	Table Table
	// Heartbeat is the peer probe cadence (default 1s).
	Heartbeat time.Duration
	// SuspectAfter is how many consecutive failed contacts mark a peer
	// dead for routing (default 3).
	SuspectAfter int
	// SharedStore declares that every node opens the same WAL tree (a
	// shared filesystem): failover then adopts a dead owner's sessions by
	// replaying their logs in place. Without it, only planned snapshot
	// handoffs move sessions, and a dead node's sessions are unavailable
	// until it returns.
	SharedStore bool
	// AttemptTimeout bounds each forwarded attempt (default 5s).
	AttemptTimeout time.Duration
	// MaxAttempts bounds forwarding retries across re-routes (default 8).
	MaxAttempts int
}

func (c *Config) normalize() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: node needs a self id")
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	return nil
}

// Node is the cluster face of one easybod process: an http.Handler that
// accepts any request, serves the sessions this node owns, and proxies the
// rest to their owners. Mount it where the bare serve.Server handler would
// go.
type Node struct {
	cfg    Config
	sv     *serve.Server
	ring   *Ring
	health *health
	client *http.Client
	fwd    forwardOptions

	cancel context.CancelFunc
	hbDone chan struct{}

	// held maps sessions this node owns by the ring to the node actually
	// holding them: they moved (failover adoption) while this node was
	// down, discovered from the fence records at boot recovery. Their
	// traffic forwards to the holder until it hands them back.
	mu   sync.Mutex
	held map[string]string

	// adoptMu serializes ownership transfers into this node so a burst of
	// forwarded requests for a dead owner's session adopts it exactly once.
	adoptMu sync.Mutex
}

// New builds a node over a recovered serve.Server.
func New(sv *serve.Server, cfg Config) (*Node, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Table)
	if err != nil {
		return nil, err
	}
	if _, ok := ring.Member(cfg.Self); !ok {
		return nil, fmt.Errorf("cluster: self %q is not in the membership table", cfg.Self)
	}
	probeTimeout := cfg.Heartbeat
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	fwd := defaultForwardOptions()
	fwd.attemptTimeout = cfg.AttemptTimeout
	fwd.maxAttempts = cfg.MaxAttempts
	return &Node{
		cfg:    cfg,
		sv:     sv,
		ring:   ring,
		health: newHealth(probeTimeout, cfg.SuspectAfter),
		client: &http.Client{},
		fwd:    fwd,
		held:   map[string]string{},
	}, nil
}

// Owns is the boot-recovery ownership filter: whether the hash ring places
// a session id on this node. Pass it to serve.Server.RecoverOwned so a
// node replays only its share of a shared store.
func (n *Node) Owns(id string) bool {
	return n.ring.Owner(id).ID == n.cfg.Self
}

// Start seeds routing state from the recovery report (sessions whose fence
// says another node holds them) and launches the heartbeat prober.
func (n *Node) Start(rep serve.RecoveryReport) {
	n.mu.Lock()
	for id, holder := range rep.HeldElsewhere {
		n.held[id] = holder
	}
	n.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.hbDone = make(chan struct{})
	go n.heartbeatLoop(ctx)
}

// Stop halts the prober. The underlying serve.Server is closed by its own
// shutdown path.
func (n *Node) Stop() {
	if n.cancel != nil {
		n.cancel()
		<-n.hbDone
	}
}

// heldBy returns the recorded holder of a ring-owned session, if any.
func (n *Node) heldBy(id string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.held[id]
	return h, ok
}

func (n *Node) forgetHeld(id string) {
	n.mu.Lock()
	delete(n.held, id)
	n.mu.Unlock()
}

// route decides where a session request goes right now: this node (local),
// a peer (target), or nowhere reachable. It performs failover adoption as
// a side effect when the routing decision lands the session here.
func (n *Node) route(id string) (target Member, local bool, ok bool) {
	if n.sv.Has(id) {
		return Member{}, true, true
	}
	dead := n.health.dead()
	if holder, held := n.heldBy(id); held {
		if m, found := n.ring.Member(holder); found && !dead[holder] {
			return m, false, true
		}
		// The holder died too; fall through to ring + failover, which may
		// adopt the session right back here.
	}
	owner := n.ring.Owner(id)
	if owner.ID != n.cfg.Self {
		if !dead[owner.ID] {
			return owner, false, true
		}
		cand, found := n.ring.OwnerExcluding(id, dead)
		if !found {
			return Member{}, false, false
		}
		if cand.ID != n.cfg.Self {
			return cand, false, true
		}
	}
	// The decision landed here (ring owner, or failover candidate for a
	// dead owner): adopt from the shared store if another node's fence
	// does not forbid it.
	if n.tryAdopt(id, dead) {
		return Member{}, true, true
	}
	// Adoption was refused because an alive node holds the session; the
	// refusal recorded the holder.
	if holder, held := n.heldBy(id); held {
		if m, found := n.ring.Member(holder); found && !dead[holder] {
			return m, false, true
		}
		return Member{}, false, false
	}
	return Member{}, true, true
}

// tryAdopt takes over a session the routing decision landed here when the
// shared store holds it but the live registry does not: the failover path.
// Adoption replays the dead owner's WAL and durably fences the session to
// this node before a single request touches it. It reports false only when
// the store's fence names an alive holder — the session is not ours, route
// there instead. Every other failure reports true: a session the store
// does not hold will 404 or create locally, a quarantined one answers
// through the serve layer; its response is authoritative either way.
func (n *Node) tryAdopt(id string, dead map[string]bool) bool {
	if !n.cfg.SharedStore {
		return true
	}
	n.adoptMu.Lock()
	defer n.adoptMu.Unlock()
	if n.sv.Has(id) {
		return true
	}
	_, err := n.sv.Adopt(id, n.cfg.Self, func(owner string) bool { return dead[owner] })
	if err == nil {
		n.forgetHeld(id)
		return true
	}
	var held *serve.HeldElsewhereError
	if errors.As(err, &held) {
		n.mu.Lock()
		n.held[id] = held.Owner
		n.mu.Unlock()
		return false
	}
	return true
}

// ServeHTTP implements http.Handler: cluster admin routes, cluster-aware
// probes, and owner-routed session traffic.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	parts := splitPath(r.URL.Path)
	switch {
	case len(parts) == 2 && parts[0] == "cluster":
		n.serveCluster(w, r, parts[1])
	case len(parts) == 1 && parts[0] == "readyz":
		n.serveReadyz(w)
	case len(parts) >= 1 && parts[0] == "sessions":
		n.serveSessions(w, r, parts[1:])
	default:
		// healthz and everything else the serve layer knows.
		n.sv.ServeHTTP(w, r)
	}
}

func (n *Node) serveCluster(w http.ResponseWriter, r *http.Request, verb string) {
	switch verb {
	case "health":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: use GET"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":      n.cfg.Self,
			"ready":   n.sv.Ready(),
			"version": n.ring.Table().Version,
		})
	case "ring":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: use GET"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"table": n.ring.Table(),
			"peers": n.health.view(n.ring.Table().Members, n.cfg.Self),
		})
	case "holds":
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: use GET"))
			return
		}
		n.mu.Lock()
		held := make(map[string]string, len(n.held))
		for id, holder := range n.held {
			held[id] = holder
		}
		n.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"live":           n.sv.SessionIDs(),
			"held_elsewhere": held,
		})
	case "adopt":
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: use POST"))
			return
		}
		n.handleAdopt(w, r)
	case "release":
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, fmt.Errorf("cluster: use POST"))
			return
		}
		n.handleRelease(w, r)
	default:
		writeJSONError(w, http.StatusNotFound, fmt.Errorf("cluster: no such route"))
	}
}

// serveReadyz is the cluster-aware readiness probe: the serve layer's
// recovery progress plus this node's view of its peers.
func (n *Node) serveReadyz(w http.ResponseWriter) {
	code := http.StatusOK
	if !n.sv.Ready() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":    n.sv.Ready(),
		"node":     n.cfg.Self,
		"version":  n.ring.Table().Version,
		"sessions": n.sv.SessionCount(),
		"recovery": n.sv.Progress(),
		"peers":    n.health.view(n.ring.Table().Members, n.cfg.Self),
	})
}

// serveSessions routes session traffic by ownership.
func (n *Node) serveSessions(w http.ResponseWriter, r *http.Request, rest []string) {
	switch {
	case len(rest) == 0 && r.Method == http.MethodGet:
		// Listing is per-node: it reports the sessions this node holds.
		n.sv.ServeHTTP(w, r)
	case len(rest) == 0 && r.Method == http.MethodPost:
		n.handleCreate(w, r)
	case len(rest) == 1 && rest[0] == "restore":
		n.handleRestore(w, r)
	case len(rest) >= 1:
		n.dispatch(w, r, rest[0], nil)
	default:
		n.sv.ServeHTTP(w, r)
	}
}

// handleCreate routes session creation to the id's owner, minting the id
// here when the client left the choice open (the owner is a function of
// the id, so someone must fix it before routing).
func (n *Node) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: reading request body: %w", err))
		return
	}
	var probe struct {
		ID string `json:"id"`
	}
	// Tolerate an undecodable body here: the owning serve layer produces
	// the authoritative 400.
	_ = json.Unmarshal(body, &probe)
	if probe.ID == "" {
		id := "s-" + newIdempotencyKey()[4:]
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil || doc == nil {
			n.sv.ServeHTTP(w, restoreBody(r, body))
			return
		}
		doc["id"] = id
		rewritten, err := json.Marshal(doc)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: rewriting create body: %w", err))
			return
		}
		body, probe.ID = rewritten, id
	}
	n.dispatch(w, restoreBody(r, body), probe.ID, body)
}

// handleRestore routes a snapshot restore to the snapshot id's owner.
func (n *Node) handleRestore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: reading request body: %w", err))
		return
	}
	var probe struct {
		ID string `json:"id"`
	}
	_ = json.Unmarshal(body, &probe)
	if probe.ID == "" {
		n.sv.ServeHTTP(w, restoreBody(r, body))
		return
	}
	n.dispatch(w, restoreBody(r, body), probe.ID, body)
}

// dispatch routes one id-addressed request: local service, or forwarding
// with retries. Requests that were already forwarded once are never
// forwarded again (loop break): if they do not resolve locally the origin
// gets a retryable error and re-routes.
func (n *Node) dispatch(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	if via := r.Header.Get(forwardedHeader); via != "" {
		_, local, ok := n.route(id)
		if !ok || !local {
			writeJSONError(w, http.StatusServiceUnavailable,
				fmt.Errorf("cluster: %s misrouted session %q to %s", via, id, n.cfg.Self))
			return
		}
		n.sv.ServeHTTP(w, r)
		return
	}
	if body == nil {
		n.forwardSession(w, r, id)
		return
	}
	n.forwardSessionBody(w, r, id, body)
}

// serveLocal replays a buffered request into the serve layer.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte, hdr http.Header) {
	r2 := restoreBody(r, body)
	if ik := hdr.Get(serve.IdempotencyHeader); ik != "" && r2.Header.Get(serve.IdempotencyHeader) == "" {
		r2.Header.Set(serve.IdempotencyHeader, ik)
	}
	n.sv.ServeHTTP(w, r2)
}

// restoreBody rebinds a consumed request body.
func restoreBody(r *http.Request, body []byte) *http.Request {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	return r2
}

// adoptRequest is the handoff wire document: the session being
// transferred and (for separate-store clusters) the snapshot to install.
type adoptRequest struct {
	ID       string          `json:"id"`
	Snapshot *serve.Snapshot `json:"snapshot,omitempty"`
}

type adoptResponse struct {
	ID      string `json:"id"`
	Adopted string `json:"adopted"` // "store" | "snapshot" | "already"
}

// handleAdopt is the receiving half of a handoff (and of heal-on-return):
// take ownership of a session another node fenced over to us. Shared
// store first — replay the log in place — falling back to installing the
// shipped snapshot.
func (n *Node) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var req adoptRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 32<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding adopt request: %w", err))
		return
	}
	if req.ID == "" {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: adopt request has no session id"))
		return
	}
	n.adoptMu.Lock()
	defer n.adoptMu.Unlock()
	if n.sv.Has(req.ID) {
		writeJSON(w, http.StatusOK, adoptResponse{ID: req.ID, Adopted: "already"})
		return
	}
	if n.cfg.SharedStore {
		// The sender fenced the session to us before shipping, so the
		// recorded owner is normally self; any other alive holder means a
		// stale or misdirected transfer, which the guard refuses.
		_, err := n.sv.Adopt(req.ID, n.cfg.Self, func(owner string) bool { return !n.health.alive(owner) })
		if err == nil {
			n.forgetHeld(req.ID)
			writeJSON(w, http.StatusOK, adoptResponse{ID: req.ID, Adopted: "store"})
			return
		}
		if !errors.Is(err, serve.ErrUnknownSession) {
			writeJSONError(w, http.StatusConflict, err)
			return
		}
	}
	if req.Snapshot == nil {
		writeJSONError(w, http.StatusNotFound,
			fmt.Errorf("cluster: session %q not in this node's store and no snapshot shipped", req.ID))
		return
	}
	if _, err := n.sv.InstallSnapshot(*req.Snapshot); err != nil {
		writeJSONError(w, http.StatusConflict, err)
		return
	}
	n.forgetHeld(req.ID)
	writeJSON(w, http.StatusOK, adoptResponse{ID: req.ID, Adopted: "snapshot"})
}

// handleRelease hands a session this node holds back to its ring owner —
// the healing step, also exposed for operators and tests.
func (n *Node) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding release request: %w", err))
		return
	}
	if !n.sv.Has(req.ID) {
		writeJSONError(w, http.StatusNotFound, fmt.Errorf("%w: %q", serve.ErrUnknownSession, req.ID))
		return
	}
	owner := n.ring.Owner(req.ID)
	if owner.ID == n.cfg.Self {
		writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "released": false, "reason": "already at ring owner"})
		return
	}
	if err := n.handoff(r.Context(), req.ID, owner); err != nil {
		writeJSONError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "released": true, "to": owner.ID})
}

// handoff moves one session to a target node: fence + snapshot here, adopt
// there, retire the local copy. Any failure before the target acknowledges
// aborts the transfer and resumes serving locally at a fresh epoch.
func (n *Node) handoff(ctx context.Context, id string, target Member) error {
	snap, err := n.sv.BeginHandoff(id, target.ID)
	if err != nil {
		return fmt.Errorf("cluster: beginning handoff of %q: %w", id, err)
	}
	payload, err := json.Marshal(adoptRequest{ID: id, Snapshot: &snap})
	if err != nil {
		if aerr := n.sv.AbortHandoff(id, n.cfg.Self); aerr != nil {
			return fmt.Errorf("cluster: encoding handoff of %q failed (%v) and abort failed too: %w", id, err, aerr)
		}
		return fmt.Errorf("cluster: encoding handoff of %q: %w", id, err)
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	res, err := n.forwardOnce(ctx, target, http.MethodPost, "/cluster/adopt", payload, hdr)
	if err != nil || res.status != http.StatusOK {
		if err == nil {
			err = fmt.Errorf("target answered %d: %s", res.status, strings.TrimSpace(string(res.body)))
		}
		n.health.fail(target.ID)
		if aerr := n.sv.AbortHandoff(id, n.cfg.Self); aerr != nil {
			return fmt.Errorf("cluster: handoff of %q to %s failed (%v) and abort failed too: %w", id, target.ID, err, aerr)
		}
		return fmt.Errorf("cluster: handing off %q to %s: %w", id, target.ID, err)
	}
	var ack adoptResponse
	// An undecodable ack still acknowledged with 200; default to keeping
	// shared data, the safe side.
	_ = json.Unmarshal(res.body, &ack)
	if err := n.sv.CompleteHandoff(id, ack.Adopted == "snapshot"); err != nil {
		return fmt.Errorf("cluster: completing handoff of %q: %w", id, err)
	}
	return nil
}

// healHeldSessions runs on the heartbeat cadence: any session this node
// holds whose ring owner is alive and is not us goes home. This is how a
// failover adoption heals once the dead node returns, and how a rebooted
// cluster converges to ring placement.
func (n *Node) healHeldSessions(ctx context.Context) {
	dead := n.health.dead()
	for _, id := range n.sv.SessionIDs() {
		owner := n.ring.Owner(id)
		if owner.ID == n.cfg.Self || dead[owner.ID] {
			continue
		}
		if err := n.handoff(ctx, id, owner); err != nil {
			// The next heartbeat retries; an aborted handoff left the
			// session serving here.
			continue
		}
	}
}

func splitPath(p string) []string {
	var parts []string
	for _, s := range strings.Split(p, "/") {
		if s != "" {
			parts = append(parts, s)
		}
	}
	return parts
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	// The status line is already committed; an encode failure is the
	// client's disconnect.
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
