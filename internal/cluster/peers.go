package cluster

import (
	"fmt"
	"strings"
)

// ParsePeers parses an operator-supplied membership list — comma-separated
// id=url pairs, e.g.
//
//	a=http://10.0.0.1:7823,b=http://10.0.0.2:7823,c=http://10.0.0.3:7823
//
// — into a membership table at the given version. Every node of a cluster
// must be started with the identical list and version: placement is a pure
// function of the table, so a disagreement splits routing.
func ParsePeers(s string, version uint64) (Table, error) {
	t := Table{Version: version}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return Table{}, fmt.Errorf("cluster: bad peer %q (want id=url)", pair)
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		t.Members = append(t.Members, Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if err := t.normalize(); err != nil {
		return Table{}, err
	}
	return t, nil
}
