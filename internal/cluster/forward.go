package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"strings"
	"time"

	"easybo/internal/serve"
)

// Forwarding headers. forwardedHeader breaks proxy loops: a request that
// already carries it is served (or refused) locally, never re-forwarded,
// so a routing disagreement between two nodes degrades to a retryable
// error instead of a cycle.
const forwardedHeader = "X-Easybod-Forwarded-By"

// forwardOptions tunes the per-request retry schedule.
type forwardOptions struct {
	attemptTimeout time.Duration // per-attempt HTTP deadline
	maxAttempts    int           // total tries across re-routes
	backoffBase    time.Duration // first retry delay; doubles per attempt
	backoffMax     time.Duration // delay cap
}

func defaultForwardOptions() forwardOptions {
	return forwardOptions{
		attemptTimeout: 5 * time.Second,
		maxAttempts:    8,
		backoffBase:    25 * time.Millisecond,
		backoffMax:     2 * time.Second,
	}
}

// newIdempotencyKey mints a key for a mutating forward that arrived
// without one: the owner may apply a delivery whose response is lost, and
// the retried delivery must be recognized as the same request.
func newIdempotencyKey() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return "fwd-" + hex.EncodeToString(b[:])
}

// jitter returns a uniformly random delay in [d/2, d): desynchronizing
// retries from many forwarders keeps a recovering owner from absorbing a
// synchronized thundering herd.
func jitter(d time.Duration) time.Duration {
	half := d / 2
	n, err := rand.Int(rand.Reader, big.NewInt(int64(half)+1))
	if err != nil {
		return d
	}
	return half + time.Duration(n.Int64())
}

// forwardResult is one attempt's outcome.
type forwardResult struct {
	status int
	header http.Header
	body   []byte
}

// forwardOnce proxies one buffered request to a peer with a per-attempt
// timeout. A non-nil error is a transport failure (connect refused, peer
// died mid-response, deadline): the caller may re-route and retry; any
// HTTP response — success or failure — is returned as-is.
func (n *Node) forwardOnce(ctx context.Context, m Member, method, path string, body []byte, hdr http.Header) (*forwardResult, error) {
	ctx, cancel := context.WithTimeout(ctx, n.fwd.attemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.URL+path, rd)
	if err != nil {
		return nil, fmt.Errorf("cluster: building forward request: %w", err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set(forwardedHeader, n.cfg.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forwarding to %s: %w", m.ID, err)
	}
	defer func() {
		//easybolint:ok errdrop response body already fully read (or failed); close releases the connection
		_ = resp.Body.Close()
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading forwarded response from %s: %w", m.ID, err)
	}
	return &forwardResult{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// retryableStatus reports whether a forwarded response justifies
// re-resolving ownership and trying again: 5xx (the peer is booting,
// recovering, or overloaded) and 412 (we hit a fenced copy mid-transfer;
// the session is moving and will land somewhere routable).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusPreconditionFailed
}

// forwardSession routes one session request to its owner, retrying across
// transport failures, fenced copies, and owner changes with bounded
// exponential backoff. Mutating verbs are keyed: the idempotency header is
// attached before the first attempt, so an owner that applied a delivery
// whose response was lost acknowledges the retry instead of applying it
// twice — at-least-once forwarding, exactly-once tells.
func (n *Node) forwardSession(w http.ResponseWriter, r *http.Request, id string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: reading request body: %w", err))
		return
	}
	n.forwardSessionBody(w, r, id, body)
}

// forwardSessionBody is forwardSession for a request whose body was
// already buffered (create/restore routing reads it to learn the id).
func (n *Node) forwardSessionBody(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	// Shed before proxying: an ask this node would refuse must not consume
	// a forward attempt and a slot on the owner's queue first. The slot is
	// held for the duration of the proxy (bounding asks in flight through
	// this node) and released before local serving, which runs its own
	// gate. The owner's own 429 relays verbatim below — backpressure always
	// reaches the client.
	var release func()
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/ask") {
		var ok bool
		if release, ok = n.sv.AdmitAsk(); !ok {
			serve.WriteOverloaded(w)
			return
		}
	}
	defer func() {
		if release != nil {
			release()
		}
	}()
	hdr := http.Header{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		hdr.Set("Content-Type", ct)
	}
	if ik := r.Header.Get(serve.IdempotencyHeader); ik != "" {
		hdr.Set(serve.IdempotencyHeader, ik)
	} else if r.Method != http.MethodGet {
		if ik := newIdempotencyKey(); ik != "" {
			hdr.Set(serve.IdempotencyHeader, ik)
		}
	}

	var lastErr error
	delay := n.fwd.backoffBase
	for attempt := 0; attempt < n.fwd.maxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-r.Context().Done():
				writeJSONError(w, http.StatusGatewayTimeout, r.Context().Err())
				return
			case <-time.After(jitter(delay)):
			}
			delay *= 2
			if delay > n.fwd.backoffMax {
				delay = n.fwd.backoffMax
			}
		}
		target, local, ok := n.route(id)
		if !ok {
			lastErr = fmt.Errorf("cluster: no reachable owner for session %q", id)
			continue
		}
		if local {
			// Ownership resolved to this node (possibly after an adoption
			// the route step performed): serve it here. The local handler
			// runs its own admission gate, so the proxy slot is returned
			// first to avoid counting the request twice.
			if release != nil {
				release()
				release = nil
			}
			n.serveLocal(w, r, body, hdr)
			return
		}
		res, err := n.forwardOnce(r.Context(), target, r.Method, r.URL.Path, body, hdr)
		if err != nil {
			// Transport failure: the owner may be down; tell the health
			// table so the next route excludes it.
			n.health.fail(target.ID)
			lastErr = err
			continue
		}
		if retryableStatus(res.status) && attempt < n.fwd.maxAttempts-1 {
			lastErr = fmt.Errorf("cluster: %s answered %d", target.ID, res.status)
			continue
		}
		writeForwarded(w, res)
		return
	}
	writeJSONError(w, http.StatusBadGateway,
		fmt.Errorf("cluster: session %q unreachable after %d attempts: %w", id, n.fwd.maxAttempts, lastErr))
}

// writeForwarded relays a peer's response verbatim.
func writeForwarded(w http.ResponseWriter, res *forwardResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		// An owner's 429 shed must reach the client with its backoff hint.
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	//easybolint:ok errdrop the response is already committed; a failed relay write is the client's disconnect
	_, _ = w.Write(res.body)
}
