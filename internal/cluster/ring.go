// Package cluster turns a set of easybod processes into one fault-tolerant
// session service. Every session lives on exactly one node — its owner,
// chosen by consistent hashing over a versioned membership table — but any
// node accepts any request and transparently proxies it to the owner, so
// clients need no routing knowledge. Ownership moves in two ways, both
// fenced by a durable epoch (see internal/serve handoff hooks): a planned
// handoff ships the session's snapshot to the new owner, and node loss is
// healed by the surviving next-in-ring node adopting the session from the
// shared store and replaying its write-ahead log.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Member is one node of the cluster membership.
type Member struct {
	ID  string `json:"id"`  // stable node name (fence records carry it)
	URL string `json:"url"` // base URL peers reach the node at
}

// Table is a versioned membership table. Placement is a pure function of
// (table, session id): every node holding the same table version routes a
// session to the same owner, and a version bump (node added or removed by
// an operator) moves only the sessions whose owner changed.
type Table struct {
	Version uint64   `json:"version"`
	Members []Member `json:"members"`
}

// normalize sorts members by id and rejects duplicates and empties.
func (t *Table) normalize() error {
	if len(t.Members) == 0 {
		return fmt.Errorf("cluster: empty membership table")
	}
	sort.Slice(t.Members, func(i, j int) bool { return t.Members[i].ID < t.Members[j].ID })
	for i, m := range t.Members {
		if m.ID == "" {
			return fmt.Errorf("cluster: member %d has no id", i)
		}
		if i > 0 && t.Members[i-1].ID == m.ID {
			return fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
	}
	return nil
}

// virtualNodes is the number of ring points per member. 64 keeps the
// per-node load spread within a few percent for small clusters while the
// ring stays a few KiB.
const virtualNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring places session ids on members by consistent hashing: each member
// projects virtualNodes points onto a 64-bit circle, and an id belongs to
// the first point clockwise from its own hash. Identical point hashes (a
// birthday collision between two members' virtual nodes) are broken by
// rendezvous hashing — highest hash(member, id) wins — so placement stays
// deterministic and identical on every node, never dependent on insertion
// order. Lookup is a binary search; the ring is immutable once built.
type Ring struct {
	table   Table
	members []Member
	points  []ringPoint
}

// NewRing builds the ring for a membership table.
func NewRing(t Table) (*Ring, error) {
	if err := t.normalize(); err != nil {
		return nil, err
	}
	r := &Ring{table: t, members: t.Members}
	r.points = make([]ringPoint, 0, len(t.Members)*virtualNodes)
	for mi, m := range t.Members {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m.ID, v)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Stable order under collisions; the rendezvous tie-break in owner()
		// decides who actually wins the arc.
		return r.members[a.member].ID < r.members[b.member].ID
	})
	return r, nil
}

// Table returns the membership the ring was built from (members sorted).
func (r *Ring) Table() Table { return r.table }

// Member returns the member with the given id.
func (r *Ring) Member(id string) (Member, bool) {
	for _, m := range r.members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// Owner returns the member that owns a session id.
func (r *Ring) Owner(id string) Member {
	m, _ := r.owner(id, nil)
	return m
}

// OwnerExcluding returns the owner after skipping excluded members —
// failover routing: the ring with the dead node removed, computed without
// rebuilding. ok is false when every member is excluded.
func (r *Ring) OwnerExcluding(id string, excluded map[string]bool) (Member, bool) {
	return r.owner(id, excluded)
}

func (r *Ring) owner(id string, excluded map[string]bool) (Member, bool) {
	h := hash64(id)
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < n; off++ {
		i := (start + off) % n
		p := r.points[i]
		m := r.members[p.member]
		if excluded[m.ID] {
			continue
		}
		// Collision arc: several virtual nodes may share this exact hash;
		// rendezvous-hash the candidates so the winner is a function of
		// (members, id) alone.
		best, bestScore := m, rendezvous(m.ID, id)
		for j := i + 1; j < n && r.points[j].hash == p.hash; j++ {
			c := r.members[r.points[j].member]
			if excluded[c.ID] {
				continue
			}
			if s := rendezvous(c.ID, id); s > bestScore {
				best, bestScore = c, s
			}
		}
		return best, true
	}
	return Member{}, false
}

// hash64 is the ring's point hash: FNV-1a (stable across processes and
// architectures) pushed through a 64-bit avalanche finalizer. Raw FNV-1a
// ends on a multiply, so strings sharing a prefix and differing only in
// trailing digits — exactly what session ids look like — hash within
// ~2^48 of each other while ring arcs are ~2^56 wide, and whole runs of
// ids pile onto one arc. The finalizer (MurmurHash3 fmix64) spreads
// those low-bit differences across all 64 bits.
func hash64(s string) uint64 {
	h := fnv.New64a()
	//easybolint:ok errdrop hash.Hash Write never fails by contract
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rendezvous scores a (member, key) pair for collision tie-breaks.
func rendezvous(member, key string) uint64 {
	return hash64(member + "\x00" + key)
}
