package cluster

import (
	"fmt"
	"testing"
)

func testTable(n int) Table {
	t := Table{Version: 1}
	for i := 0; i < n; i++ {
		t.Members = append(t.Members, Member{
			ID:  fmt.Sprintf("node%d", i),
			URL: fmt.Sprintf("http://127.0.0.1:%d", 9000+i),
		})
	}
	return t
}

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(testTable(3))
	if err != nil {
		t.Fatal(err)
	}
	// Same table, members listed in a different order: placement must be
	// identical — routing is a pure function of (table, id).
	tbl := testTable(3)
	tbl.Members[0], tbl.Members[2] = tbl.Members[2], tbl.Members[0]
	b, err := NewRing(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("session-%d", i)
		if got, want := b.Owner(id).ID, a.Owner(id).ID; got != want {
			t.Fatalf("owner of %q differs across identical rings: %q vs %q", id, got, want)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r, err := NewRing(testTable(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("session-%d", i)).ID]++
	}
	for id, c := range counts {
		// With 64 virtual nodes per member the spread stays well inside
		// [15%, 55%] for 3 nodes; a violation means the ring is broken.
		if c < n*15/100 || c > n*55/100 {
			t.Errorf("member %s owns %d/%d sessions — ring badly unbalanced: %v", id, c, n, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members own sessions: %v", len(counts), counts)
	}
}

func TestRingMinimalMovement(t *testing.T) {
	r3, err := NewRing(testTable(3))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(testTable(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	moved := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("session-%d", i)
		if r3.Owner(id).ID != r4.Owner(id).ID {
			moved++
		}
	}
	// Adding a 4th node should move roughly 1/4 of keys; consistent hashing
	// fails if half the keyspace reshuffles.
	if moved > n/2 {
		t.Fatalf("adding one member moved %d/%d sessions — not consistent hashing", moved, n)
	}
	if moved == 0 {
		t.Fatalf("adding a member moved nothing — new node gets no load")
	}
}

func TestOwnerExcluding(t *testing.T) {
	r, err := NewRing(testTable(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("session-%d", i)
		owner := r.Owner(id)
		failover, ok := r.OwnerExcluding(id, map[string]bool{owner.ID: true})
		if !ok {
			t.Fatalf("no failover owner for %q with one node down", id)
		}
		if failover.ID == owner.ID {
			t.Fatalf("failover owner for %q is the excluded node %q", id, owner.ID)
		}
		// Sessions whose owner is alive must not move when another node is
		// excluded: failover only reroutes the dead node's share.
		other := "node0"
		if owner.ID == other {
			other = "node1"
		}
		stay, ok := r.OwnerExcluding(id, map[string]bool{other: true})
		if !ok || stay.ID != owner.ID {
			t.Fatalf("excluding %q moved %q from %q to %q", other, id, owner.ID, stay.ID)
		}
	}
	if _, ok := r.OwnerExcluding("x", map[string]bool{"node0": true, "node1": true, "node2": true}); ok {
		t.Fatal("owner found with every member excluded")
	}
}
