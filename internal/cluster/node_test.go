package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"easybo/internal/serve"
)

// handlerSwap lets the httptest listener exist before the Node it serves
// (URLs go into the membership table the Node is built from), and lets a
// "revived" node swap a fresh Node in behind the same address.
type handlerSwap struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *handlerSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, `{"error":"booting"}`, http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testNode is one in-process cluster member.
type testNode struct {
	id   string
	addr string
	swap *handlerSwap
	ts   *httptest.Server
	sv   *serve.Server
	node *Node
}

type testCluster struct {
	t     *testing.T
	store *serve.MemStore
	table Table
	nodes map[string]*testNode
	ring  *Ring
}

func newTestCluster(t *testing.T, size int) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:     t,
		store: serve.NewMemStore(),
		nodes: map[string]*testNode{},
	}
	tc.table.Version = 1
	names := make([]string, size)
	for i := 0; i < size; i++ {
		names[i] = fmt.Sprintf("node%d", i)
		swap := &handlerSwap{}
		ts := httptest.NewServer(swap)
		tc.nodes[names[i]] = &testNode{
			id:   names[i],
			addr: ts.Listener.Addr().String(),
			swap: swap,
			ts:   ts,
		}
		tc.table.Members = append(tc.table.Members, Member{ID: names[i], URL: ts.URL})
	}
	ring, err := NewRing(tc.table)
	if err != nil {
		t.Fatal(err)
	}
	tc.ring = ring
	for _, name := range names {
		tc.boot(name)
	}
	t.Cleanup(func() {
		for _, tn := range tc.nodes {
			if tn.node != nil {
				tn.node.Stop()
			}
			if tn.ts != nil {
				tn.ts.Close()
			}
		}
	})
	return tc
}

// boot builds a fresh serve.Server + Node for a member and swaps it live.
func (tc *testCluster) boot(id string) {
	tc.t.Helper()
	tn := tc.nodes[id]
	sv := serve.NewServerWith(serve.ServerOptions{Store: tc.store, NodeID: id})
	node, err := New(sv, Config{
		Self:           id,
		Table:          tc.table,
		Heartbeat:      50 * time.Millisecond,
		SuspectAfter:   2,
		SharedStore:    true,
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    10,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	rep, err := sv.RecoverOwned(node.Owns)
	if err != nil {
		tc.t.Fatal(err)
	}
	node.Start(rep)
	tn.sv, tn.node = sv, node
	tn.swap.set(node)
}

// kill simulates a node death: the listener refuses connections and the
// server shuts down (every session actor drains and its log handle
// closes — the shared store itself survives, as a shared filesystem
// would).
func (tc *testCluster) kill(id string) {
	tn := tc.nodes[id]
	tn.ts.Close()
	tn.node.Stop()
	tn.sv.Close()
	tn.ts, tn.node, tn.sv = nil, nil, nil
	tn.swap.set(nil)
}

// revive restarts a killed node on its original address.
func (tc *testCluster) revive(id string) {
	tc.t.Helper()
	tn := tc.nodes[id]
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ {
		l, err = net.Listen("tcp", tn.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tc.t.Fatalf("rebinding %s on %s: %v", id, tn.addr, err)
	}
	ts := httptest.NewUnstartedServer(tn.swap)
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	tn.ts = ts
	tc.boot(id)
}

func (tc *testCluster) url(id string) string { return tc.nodes[id].ts.URL }

// idOwnedBy derives a session id the ring places on the wanted node.
func (tc *testCluster) idOwnedBy(owner, prefix string) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if tc.ring.Owner(id).ID == owner {
			return id
		}
	}
}

// call issues one JSON request and decodes the response.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func sessionConfig(id string) map[string]any {
	return map[string]any{
		"id":          id,
		"lo":          []float64{0, 0},
		"hi":          []float64{1, 1},
		"seed":        7,
		"init_points": 3,
		"max_evals":   64,
	}
}

// drive asks once and tells the result back through the given base URL,
// returning the proposal that was acknowledged (nil on wait/done).
func drive(t *testing.T, base, id string) *serve.Ask {
	t.Helper()
	var ask serve.Ask
	if code := call(t, http.MethodPost, base+"/sessions/"+id+"/ask", nil, &ask); code != http.StatusOK {
		t.Fatalf("ask via %s: status %d", base, code)
	}
	if ask.Status != serve.AskOK {
		return nil
	}
	y := ask.X[0] + 2*ask.X[1]
	var st serve.Status
	if code := call(t, http.MethodPost, base+"/sessions/"+id+"/tell",
		map[string]any{"proposal_id": ask.ProposalID, "y": y}, &st); code != http.StatusOK {
		t.Fatalf("tell via %s: status %d", base, code)
	}
	return &ask
}

func TestAnyNodeRouting(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := tc.idOwnedBy("node0", "route")
	// Create through a non-owner: the request must land on node0.
	if code := call(t, http.MethodPost, tc.url("node2")+"/sessions", sessionConfig(id), nil); code != http.StatusCreated {
		t.Fatalf("create via node2: status %d", code)
	}
	if !tc.nodes["node0"].sv.Has(id) {
		t.Fatalf("session %q did not land on its ring owner node0", id)
	}
	if tc.nodes["node2"].sv.Has(id) {
		t.Fatalf("session %q also lives on the entry node node2", id)
	}
	// Drive through every node round-robin; state must stay coherent.
	acked := 0
	for i := 0; i < 9; i++ {
		base := tc.url(fmt.Sprintf("node%d", i%3))
		if drive(t, base, id) != nil {
			acked++
		}
	}
	var st serve.Status
	if code := call(t, http.MethodGet, tc.url("node1")+"/sessions/"+id, nil, &st); code != http.StatusOK {
		t.Fatalf("status via node1: %d", code)
	}
	if st.Observations != acked {
		t.Fatalf("observations %d, acked tells %d", st.Observations, acked)
	}
}

func TestCreateWithoutIDRoutesToOwner(t *testing.T) {
	tc := newTestCluster(t, 3)
	var created struct {
		ID string `json:"id"`
	}
	cfg := sessionConfig("")
	delete(cfg, "id")
	if code := call(t, http.MethodPost, tc.url("node1")+"/sessions", cfg, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID == "" {
		t.Fatal("no id assigned")
	}
	owner := tc.ring.Owner(created.ID).ID
	if !tc.nodes[owner].sv.Has(created.ID) {
		t.Fatalf("generated session %q not on its ring owner %s", created.ID, owner)
	}
}

func TestFailoverLosesNoAcknowledgedTell(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := tc.idOwnedBy("node0", "failover")
	if code := call(t, http.MethodPost, tc.url("node1")+"/sessions", sessionConfig(id), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	acked := 0
	for i := 0; i < 5; i++ {
		if drive(t, tc.url("node1"), id) != nil {
			acked++
		}
	}
	tc.kill("node0")
	// Survivors must adopt and keep serving; every pre-kill acked tell
	// must still be in the history.
	for i := 0; i < 5; i++ {
		base := tc.url(fmt.Sprintf("node%d", 1+i%2))
		if drive(t, base, id) != nil {
			acked++
		}
	}
	var st serve.Status
	if code := call(t, http.MethodGet, tc.url("node2")+"/sessions/"+id, nil, &st); code != http.StatusOK {
		t.Fatalf("status after failover: %d", code)
	}
	if st.Observations != acked {
		t.Fatalf("observations %d after failover, acked tells %d", st.Observations, acked)
	}
	if st.Epoch < 2 {
		t.Fatalf("epoch %d after failover adoption, want >= 2", st.Epoch)
	}
}

func TestStaleOwnerIsFenced(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := tc.idOwnedBy("node0", "fence")
	if code := call(t, http.MethodPost, tc.url("node0")+"/sessions", sessionConfig(id), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var ask serve.Ask
	if code := call(t, http.MethodPost, tc.url("node0")+"/sessions/"+id+"/ask", nil, &ask); code != http.StatusOK {
		t.Fatalf("ask: %d", code)
	}
	sv0 := tc.nodes["node0"].sv
	if _, err := sv0.BeginHandoff(id, "node1"); err != nil {
		t.Fatal(err)
	}
	// The old owner's copy is fenced: an in-flight tell against it must be
	// rejected with 412, never absorbed.
	req, _ := http.NewRequest(http.MethodPost, tc.url("node0")+"/sessions/"+id+"/tell",
		bytes.NewReader([]byte(fmt.Sprintf(`{"proposal_id": %d, "y": 1.5}`, ask.ProposalID))))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Easybod-Forwarded-By", "test") // pin to this node: no re-forwarding
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("tell to fenced owner: status %d, want 412", resp.StatusCode)
	}
	// Finish the transfer; the new owner serves, and the told outcome is
	// applied exactly once there.
	var ack adoptResponse
	if code := call(t, http.MethodPost, tc.url("node1")+"/cluster/adopt", adoptRequest{ID: id}, &ack); code != http.StatusOK {
		t.Fatalf("adopt: %d (%+v)", code, ack)
	}
	if ack.Adopted != "store" {
		t.Fatalf("adopted %q, want store", ack.Adopted)
	}
	if err := sv0.CompleteHandoff(id, false); err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if code := call(t, http.MethodPost, tc.url("node1")+"/sessions/"+id+"/tell",
		map[string]any{"proposal_id": ask.ProposalID, "y": 1.5}, &st); code != http.StatusOK {
		t.Fatalf("tell to new owner: %d", code)
	}
	if st.Observations != 1 || st.Pending != 0 {
		t.Fatalf("new owner state: %d observations, %d pending", st.Observations, st.Pending)
	}
	if st.Epoch < 2 {
		t.Fatalf("epoch %d after handoff, want >= 2", st.Epoch)
	}
}

func TestIdempotentRetries(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := tc.idOwnedBy("node1", "idem")
	if code := call(t, http.MethodPost, tc.url("node0")+"/sessions", sessionConfig(id), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	// Ask twice with the same key: the retried delivery must see the
	// originally issued proposal, not consume a second budget slot.
	askWith := func(key string) serve.Ask {
		req, _ := http.NewRequest(http.MethodPost, tc.url("node2")+"/sessions/"+id+"/ask", nil)
		req.Header.Set(serve.IdempotencyHeader, key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var a serve.Ask
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a2 := askWith("ask-key-1"), askWith("ask-key-1")
	if a1.ProposalID != a2.ProposalID {
		t.Fatalf("retried ask issued a different proposal: %d vs %d", a1.ProposalID, a2.ProposalID)
	}
	// Tell twice with the same key: applied exactly once.
	tell := map[string]any{"proposal_id": a1.ProposalID, "y": 0.25, "ik": "tell-key-1"}
	var st1, st2 serve.Status
	if code := call(t, http.MethodPost, tc.url("node0")+"/sessions/"+id+"/tell", tell, &st1); code != http.StatusOK {
		t.Fatalf("tell: %d", code)
	}
	if code := call(t, http.MethodPost, tc.url("node2")+"/sessions/"+id+"/tell", tell, &st2); code != http.StatusOK {
		t.Fatalf("retried tell: %d", code)
	}
	if st1.Observations != 1 || st2.Observations != 1 {
		t.Fatalf("observations after duplicate tell: %d then %d, want 1 and 1", st1.Observations, st2.Observations)
	}
}

func TestHealAfterOwnerReturns(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := tc.idOwnedBy("node0", "heal")
	if code := call(t, http.MethodPost, tc.url("node0")+"/sessions", sessionConfig(id), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	acked := 0
	for i := 0; i < 3; i++ {
		if drive(t, tc.url("node0"), id) != nil {
			acked++
		}
	}
	tc.kill("node0")
	for i := 0; i < 3; i++ {
		if drive(t, tc.url("node1"), id) != nil {
			acked++
		}
	}
	tc.revive("node0")
	// The revived owner must not replay its stale copy (the fence names
	// the adopter), and the heartbeat heal must eventually move the
	// session home.
	deadline := time.Now().Add(10 * time.Second)
	for !tc.nodes["node0"].sv.Has(id) {
		if time.Now().After(deadline) {
			t.Fatal("session never healed back to its ring owner")
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if drive(t, tc.url(fmt.Sprintf("node%d", i)), id) != nil {
			acked++
		}
	}
	var st serve.Status
	if code := call(t, http.MethodGet, tc.url("node2")+"/sessions/"+id, nil, &st); code != http.StatusOK {
		t.Fatalf("status after heal: %d", code)
	}
	if st.Observations != acked {
		t.Fatalf("observations %d after heal, acked %d — history forked or lost", st.Observations, acked)
	}
	if st.Epoch < 3 {
		t.Fatalf("epoch %d after failover + heal, want >= 3", st.Epoch)
	}
}
