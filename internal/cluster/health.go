package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// health tracks peer liveness by heartbeat. A peer is suspected dead after
// suspectAfter consecutive probe failures (or inline forward failures —
// the forwarder reports transport errors here too, so failover does not
// wait out a full heartbeat cycle) and rejoins the moment a probe
// succeeds. Liveness is advisory routing state, not truth: correctness
// against a wrongly suspected node comes from the ownership fence, which
// rejects the stale copy's writes no matter what this table believed.
type health struct {
	client  *http.Client
	timeout time.Duration
	suspect int

	mu    sync.Mutex
	fails map[string]int // peer id -> consecutive failures
}

func newHealth(probeTimeout time.Duration, suspectAfter int) *health {
	if suspectAfter <= 0 {
		suspectAfter = 3
	}
	return &health{
		client:  &http.Client{},
		timeout: probeTimeout,
		suspect: suspectAfter,
		fails:   map[string]int{},
	}
}

// alive reports whether a peer is currently believed reachable.
func (h *health) alive(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fails[id] < h.suspect
}

// dead returns the set of currently suspected peers.
func (h *health) dead() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := map[string]bool{}
	for id, n := range h.fails {
		if n >= h.suspect {
			out[id] = true
		}
	}
	return out
}

// fail records one failed contact (probe or forward) with a peer.
func (h *health) fail(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails[id]++
}

// ok records one successful contact with a peer.
func (h *health) ok(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails[id] = 0
}

// probe performs one heartbeat round against every peer but self.
func (h *health) probe(ctx context.Context, self string, members []Member) {
	for _, m := range members {
		if m.ID == self {
			continue
		}
		if h.probeOne(ctx, m) {
			h.ok(m.ID)
		} else {
			h.fail(m.ID)
		}
	}
}

func (h *health) probeOne(ctx context.Context, m Member) bool {
	ctx, cancel := context.WithTimeout(ctx, h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/cluster/health", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	//easybolint:ok errdrop heartbeat response body is empty of meaning; status code is the signal
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// heartbeatLoop probes peers on a fixed cadence until ctx is canceled.
func (n *Node) heartbeatLoop(ctx context.Context) {
	defer close(n.hbDone)
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n.health.probe(ctx, n.cfg.Self, n.ring.Table().Members)
			n.healHeldSessions(ctx)
		}
	}
}

// String renders liveness for /cluster/health diagnostics.
func (h *health) view(members []Member, self string) map[string]string {
	out := map[string]string{}
	for _, m := range members {
		switch {
		case m.ID == self:
			out[m.ID] = "self"
		case h.alive(m.ID):
			out[m.ID] = "alive"
		default:
			out[m.ID] = "suspect"
		}
	}
	return out
}
