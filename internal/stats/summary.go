package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample, matching the columns of
// the paper's result tables (Best / Worst / Mean / Std).
type Summary struct {
	N          int
	Best       float64 // maximum (the paper maximizes FOM)
	Worst      float64 // minimum
	Mean       float64
	Std        float64 // sample standard deviation (n-1 denominator)
	Median     float64
	Q1, Q3     float64
	BestIndex  int
	WorstIndex int
}

// Summarize computes descriptive statistics of xs.
// An empty sample yields a zero Summary with NaN moments.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Best: math.Inf(-1), Worst: math.Inf(1)}
	if len(xs) == 0 {
		s.Best, s.Worst = math.NaN(), math.NaN()
		s.Mean, s.Std, s.Median = math.NaN(), math.NaN(), math.NaN()
		return s
	}
	var sum float64
	for i, x := range xs {
		sum += x
		if x > s.Best {
			s.Best, s.BestIndex = x, i
		}
		if x < s.Worst {
			s.Worst, s.WorstIndex = x, i
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q1 = quantileSorted(sorted, 0.25)
	s.Q3 = quantileSorted(sorted, 0.75)
	return s
}

// quantileSorted returns the linearly interpolated p-quantile of a sorted
// sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Max returns the maximum of xs and its index (NaN, -1 for empty input).
func Max(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return math.NaN(), -1
	}
	best, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, idx = x, i+1
		}
	}
	return best, idx
}

// Min returns the minimum of xs and its index (NaN, -1 for empty input).
func Min(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return math.NaN(), -1
	}
	best, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x < best {
			best, idx = x, i+1
		}
	}
	return best, idx
}
