package stats

import (
	"math"
	"sort"
)

// MannWhitneyU performs the two-sided Mann–Whitney rank-sum test on samples
// a and b, returning the U statistic (for sample a) and the approximate
// two-sided p-value under the normal approximation with tie correction.
// Used by the experiment analysis to state whether one algorithm's
// best-FOM distribution significantly beats another's.
//
// The normal approximation is appropriate for the sample sizes used here
// (n >= 5 per the paper's repeated runs).
func MannWhitneyU(a, b []float64) (u, p float64) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie-correction term Σ(t³−t).
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		//easybolint:ok floateq a statistical tie IS exact numeric equality of sorted neighbors
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		if t := float64(j - i); t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.fromA {
			r1 += ranks[i]
		}
	}
	u = r1 - float64(n1)*float64(n1+1)/2

	mean := float64(n1) * float64(n2) / 2
	nn := float64(n1 + n2)
	variance := float64(n1) * float64(n2) / 12 * (nn + 1 - tieTerm/(nn*(nn-1)))
	if variance <= 0 {
		return u, 1
	}
	// Continuity correction.
	z := (u - mean)
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	p = 2 * (1 - NormCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return u, p
}
