package stats

import (
	"math/rand"
)

// LatinHypercube returns n points in [0,1)^d forming a Latin hypercube:
// in each dimension the n points occupy the n equal-width strata exactly
// once, in an order shuffled by rng. This is the standard initial design
// for Bayesian optimization (20 points in the paper's experiments).
func LatinHypercube(rng *rand.Rand, n, d int) [][]float64 {
	if n < 0 || d < 0 {
		panic("stats: negative LatinHypercube size")
	}
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
	}
	perm := make([]int, n)
	for j := 0; j < d; j++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < n; i++ {
			pts[i][j] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return pts
}

// Uniform returns n points drawn uniformly from [0,1)^d.
func Uniform(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// sobolDirections holds primitive polynomials and initial direction numbers
// for the first dimensions of the Sobol sequence (Joe & Kuo style, first 16
// dimensions are enough for the 10-/12-variable circuit problems).
var sobolPolys = []struct {
	s, a uint32
	m    []uint32
}{
	{1, 0, []uint32{1}},
	{2, 1, []uint32{1, 3}},
	{3, 1, []uint32{1, 3, 1}},
	{3, 2, []uint32{1, 1, 1}},
	{4, 1, []uint32{1, 1, 3, 3}},
	{4, 4, []uint32{1, 3, 5, 13}},
	{5, 2, []uint32{1, 1, 5, 5, 17}},
	{5, 4, []uint32{1, 1, 5, 5, 5}},
	{5, 7, []uint32{1, 1, 7, 11, 19}},
	{5, 11, []uint32{1, 1, 5, 1, 1}},
	{5, 13, []uint32{1, 1, 1, 3, 11}},
	{5, 14, []uint32{1, 3, 5, 5, 31}},
	{6, 1, []uint32{1, 3, 3, 9, 7, 49}},
	{6, 13, []uint32{1, 1, 1, 15, 21, 21}},
	{6, 16, []uint32{1, 3, 1, 13, 27, 49}},
}

const sobolBits = 30

// Sobol generates low-discrepancy points in [0,1)^d.
// Dimension 0 is the van der Corput sequence in base 2; higher dimensions use
// the direction numbers above. Supports up to len(sobolPolys)+1 dimensions.
type Sobol struct {
	dim int
	v   [][]uint32 // direction numbers per dimension
	x   []uint32   // current Gray-code state
	n   uint32
}

// MaxSobolDim is the largest dimension supported by NewSobol.
const MaxSobolDim = 16

// NewSobol creates a d-dimensional Sobol sequence generator.
// It panics if d exceeds MaxSobolDim.
func NewSobol(d int) *Sobol {
	if d < 1 || d > MaxSobolDim {
		panic("stats: Sobol dimension out of range")
	}
	s := &Sobol{dim: d, v: make([][]uint32, d), x: make([]uint32, d)}
	for j := 0; j < d; j++ {
		v := make([]uint32, sobolBits+1)
		if j == 0 {
			for i := 1; i <= sobolBits; i++ {
				v[i] = 1 << (sobolBits - i)
			}
		} else {
			p := sobolPolys[j-1]
			deg := int(p.s)
			for i := 1; i <= deg; i++ {
				v[i] = p.m[i-1] << (sobolBits - i)
			}
			for i := deg + 1; i <= sobolBits; i++ {
				v[i] = v[i-deg] ^ (v[i-deg] >> deg)
				for k := 1; k < deg; k++ {
					if (p.a>>(deg-1-k))&1 == 1 {
						v[i] ^= v[i-k]
					}
				}
			}
		}
		s.v[j] = v
	}
	return s
}

// Next returns the next point of the sequence.
func (s *Sobol) Next() []float64 {
	// Gray code: index of the lowest zero bit of n.
	c := 1
	n := s.n
	for n&1 == 1 {
		n >>= 1
		c++
	}
	out := make([]float64, s.dim)
	for j := 0; j < s.dim; j++ {
		s.x[j] ^= s.v[j][c]
		out[j] = float64(s.x[j]) / float64(uint32(1)<<sobolBits)
	}
	s.n++
	return out
}

// SobolPoints returns the first n points of a d-dimensional Sobol sequence
// (skipping the initial all-zeros point).
func SobolPoints(n, d int) [][]float64 {
	g := NewSobol(d)
	pts := make([][]float64, n)
	g.Next() // drop the origin
	for i := 0; i < n; i++ {
		pts[i] = g.Next()
	}
	return pts
}
