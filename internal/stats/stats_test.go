package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormPDF(t *testing.T) {
	if got := NormPDF(0); math.Abs(got-0.3989422804014327) > 1e-15 {
		t.Fatalf("NormPDF(0) = %v", got)
	}
	// Symmetry.
	if NormPDF(1.3) != NormPDF(-1.3) {
		t.Fatal("pdf not symmetric")
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormCDF(c.z); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("NormCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	f := func(u float64) bool {
		p := math.Abs(math.Mod(u, 1))
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		z := NormQuantile(p)
		return math.Abs(NormCDF(z)-p) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("tail values wrong")
	}
	if !math.IsNaN(NormQuantile(-0.1)) || !math.IsNaN(NormQuantile(1.1)) {
		t.Fatal("out-of-range p must be NaN")
	}
	if math.Abs(NormQuantile(0.5)) > 1e-12 {
		t.Fatal("median must be 0")
	}
}

func TestLogNormPDF(t *testing.T) {
	for _, z := range []float64{-2, 0, 0.5, 3} {
		if math.Abs(LogNormPDF(z)-math.Log(NormPDF(z))) > 1e-12 {
			t.Fatalf("LogNormPDF mismatch at %v", z)
		}
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, d := 32, 5
	pts := LatinHypercube(rng, n, d)
	if len(pts) != n {
		t.Fatalf("got %d points", len(pts))
	}
	for j := 0; j < d; j++ {
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := pts[i][j]
			if v < 0 || v >= 1 {
				t.Fatalf("point out of [0,1): %v", v)
			}
			k := int(v * float64(n))
			if seen[k] {
				t.Fatalf("stratum %d in dim %d hit twice", k, j)
			}
			seen[k] = true
		}
	}
}

func TestLatinHypercubeDeterministic(t *testing.T) {
	a := LatinHypercube(rand.New(rand.NewSource(5)), 10, 3)
	b := LatinHypercube(rand.New(rand.NewSource(5)), 10, 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed must give identical design")
			}
		}
	}
}

func TestUniform(t *testing.T) {
	pts := Uniform(rand.New(rand.NewSource(1)), 100, 4)
	for _, p := range pts {
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("uniform point out of range: %v", v)
			}
		}
	}
}

func TestSobolFirstPoints(t *testing.T) {
	// The base-2 van der Corput sequence starts 1/2, 1/4, 3/4, ...
	g := NewSobol(2)
	p1 := g.Next()
	p2 := g.Next()
	p3 := g.Next()
	if math.Abs(p1[0]-0.5) > 1e-12 || math.Abs(p2[0]-0.75)+math.Abs(p3[0]-0.25) > 1e-9 &&
		math.Abs(p2[0]-0.25)+math.Abs(p3[0]-0.75) > 1e-9 {
		t.Fatalf("unexpected first Sobol points: %v %v %v", p1, p2, p3)
	}
}

func TestSobolUniformity(t *testing.T) {
	// Low-discrepancy: each half of each dimension gets n/2 ± small.
	n, d := 256, 6
	pts := SobolPoints(n, d)
	for j := 0; j < d; j++ {
		var lo int
		for _, p := range pts {
			if p[j] < 0 || p[j] >= 1 {
				t.Fatalf("out of range: %v", p[j])
			}
			if p[j] < 0.5 {
				lo++
			}
		}
		if lo < n/2-2 || lo > n/2+2 {
			t.Fatalf("dim %d: %d of %d points in lower half", j, lo, n)
		}
	}
}

func TestSobolDimensionLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond MaxSobolDim")
		}
	}()
	NewSobol(MaxSobolDim + 1)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5})
	if s.Best != 5 || s.Worst != 1 || s.N != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-12 {
		t.Fatalf("mean %v", s.Mean)
	}
	want := math.Sqrt((0.04 + 3.24 + 1.44 + 3.24 + 4.84) / 4)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v want %v", s.Std, want)
	}
	if s.Median != 3 {
		t.Fatalf("median %v", s.Median)
	}
	if s.BestIndex != 4 || s.WorstIndex != 1 {
		t.Fatalf("indices %d %d", s.BestIndex, s.WorstIndex)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	s := Summarize(nil)
	if !math.IsNaN(s.Mean) || s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	one := Summarize([]float64{7})
	if one.Best != 7 || one.Worst != 7 || one.Std != 0 || one.Median != 7 {
		t.Fatalf("singleton summary %+v", one)
	}
}

func TestMeanVarianceMaxMin(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 {
		t.Fatal("Mean wrong")
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("Variance singleton must be 0")
	}
	if v, i := Max(xs); v != 6 || i != 2 {
		t.Fatal("Max wrong")
	}
	if v, i := Min(xs); v != 2 || i != 0 {
		t.Fatal("Min wrong")
	}
	if v, i := Max(nil); !math.IsNaN(v) || i != -1 {
		t.Fatal("Max(nil) wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) wrong")
	}
}

func TestQuantileSortedInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := quantileSorted(sorted, 0.25); q != 2.5 {
		t.Fatalf("q25 = %v", q)
	}
	if q := quantileSorted(sorted, 1); q != 10 {
		t.Fatalf("q100 = %v", q)
	}
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestMannWhitneyUSeparatedSamples(t *testing.T) {
	// Clearly separated samples: tiny p-value; U extreme.
	a := []float64{10, 11, 12, 13, 14, 15, 16, 17}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	u, p := MannWhitneyU(a, b)
	if u != 64 { // all pairwise wins
		t.Fatalf("U = %v, want 64", u)
	}
	if p > 0.01 {
		t.Fatalf("p = %v, want significant", p)
	}
}

func TestMannWhitneyUIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6}
	u, p := MannWhitneyU(a, a)
	if math.Abs(u-18) > 1e-9 { // mean U = n1*n2/2
		t.Fatalf("U = %v, want 18", u)
	}
	if p < 0.9 {
		t.Fatalf("identical samples must not be significant: p=%v", p)
	}
}

func TestMannWhitneyUTiesAndEdges(t *testing.T) {
	// Heavy ties must not produce NaN.
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 2}
	u, p := MannWhitneyU(a, b)
	if math.IsNaN(u) || math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("u=%v p=%v", u, p)
	}
	if _, p := MannWhitneyU(nil, a); p != 1 {
		t.Fatal("empty sample must return p=1")
	}
}

func TestMannWhitneyUSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := make([]float64, 10)
	b := make([]float64, 12)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 0.4
	}
	_, pab := MannWhitneyU(a, b)
	_, pba := MannWhitneyU(b, a)
	if math.Abs(pab-pba) > 1e-9 {
		t.Fatalf("p not symmetric: %v vs %v", pab, pba)
	}
}
