package acq

import (
	"math"
	"math/rand"
	"testing"
)

func TestPortfolioWeightsStartUniform(t *testing.T) {
	p := NewPortfolio(3, 1.0)
	w := p.Weights()
	for _, wi := range w {
		if math.Abs(wi-1.0/3) > 1e-12 {
			t.Fatalf("initial weights %v, want uniform", w)
		}
	}
	if p.NumStrategies() != 3 {
		t.Fatal("arity wrong")
	}
}

func TestPortfolioRewardsShiftWeights(t *testing.T) {
	p := NewPortfolio(2, 1.0)
	// Strategy 0 nominates a point the surrogate rates highly, strategy 1 a
	// poor one. After several updates the hedge must prefer strategy 0.
	good := []float64{1}
	bad := []float64{0}
	s := fieldSurrogate{
		mu:    func(x []float64) float64 { return x[0] },
		sigma: func([]float64) float64 { return 0.1 },
	}
	for i := 0; i < 5; i++ {
		p.RecordChoices([][]float64{good, bad})
		p.Update(s)
	}
	w := p.Weights()
	if w[0] < 0.9 {
		t.Fatalf("hedge did not favour the better strategy: %v", w)
	}
	// Sampling distribution follows the weights.
	rng := rand.New(rand.NewSource(1))
	picks0 := 0
	for i := 0; i < 1000; i++ {
		if p.Pick(rng) == 0 {
			picks0++
		}
	}
	if picks0 < 850 {
		t.Fatalf("Pick ignores weights: %d/1000", picks0)
	}
}

func TestPortfolioUpdateBeforeChoicesIsNoop(t *testing.T) {
	p := NewPortfolio(2, 1.0)
	s := fieldSurrogate{
		mu:    func(x []float64) float64 { return 1 },
		sigma: func([]float64) float64 { return 1 },
	}
	p.Update(s) // nothing recorded yet; must not panic or shift weights
	w := p.Weights()
	if math.Abs(w[0]-0.5) > 1e-12 {
		t.Fatalf("weights shifted with no data: %v", w)
	}
}

func TestPortfolioRecordArityMismatchPanics(t *testing.T) {
	p := NewPortfolio(2, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.RecordChoices([][]float64{{1}})
}

func TestPortfolioWeightsNumericallyStable(t *testing.T) {
	// Huge reward differences must not overflow the softmax.
	p := NewPortfolio(3, 1.0)
	p.rewards = []float64{1e6, 0, -1e6}
	w := p.Weights()
	if math.IsNaN(w[0]) || w[0] < 0.999 {
		t.Fatalf("softmax unstable: %v", w)
	}
	var sum float64
	for _, wi := range w {
		sum += wi
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
}
