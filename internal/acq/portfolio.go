package acq

import (
	"math"
	"math/rand"
)

// Portfolio implements GP-Hedge (Hoffman, Brochu, de Freitas — cited as the
// portfolio approach in the paper's §II-B survey): it maintains exponential
// weights over a set of acquisition strategies, samples one per proposal in
// proportion to those weights, and rewards every strategy by the posterior
// mean of the point it would have chosen.
type Portfolio struct {
	Eta     float64 // hedge learning rate (default 1.0)
	rewards []float64
	last    [][]float64 // per-strategy candidate chosen at the last round
}

// NewPortfolio creates a hedge over n strategies.
func NewPortfolio(n int, eta float64) *Portfolio {
	if eta <= 0 {
		eta = 1.0
	}
	return &Portfolio{Eta: eta, rewards: make([]float64, n), last: make([][]float64, n)}
}

// Weights returns the current selection probabilities (softmax of rewards).
func (p *Portfolio) Weights() []float64 {
	w := make([]float64, len(p.rewards))
	mx := math.Inf(-1)
	for _, r := range p.rewards {
		if r > mx {
			mx = r
		}
	}
	var sum float64
	for i, r := range p.rewards {
		w[i] = math.Exp(p.Eta * (r - mx))
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Pick samples a strategy index according to the current weights.
func (p *Portfolio) Pick(rng *rand.Rand) int {
	w := p.Weights()
	u := rng.Float64()
	var acc float64
	for i, wi := range w {
		acc += wi
		if u <= acc {
			return i
		}
	}
	return len(w) - 1
}

// RecordChoices stores the point each strategy proposed this round; call
// before the objective evaluation.
func (p *Portfolio) RecordChoices(choices [][]float64) {
	if len(choices) != len(p.last) {
		panic("acq: Portfolio.RecordChoices arity mismatch")
	}
	for i, c := range choices {
		p.last[i] = append([]float64(nil), c...)
	}
}

// Update rewards every strategy with the surrogate's posterior mean at the
// point that strategy had proposed (the GP-Hedge reward signal). Call after
// the surrogate has absorbed the newly evaluated point.
func (p *Portfolio) Update(s Surrogate) {
	for i, c := range p.last {
		if c == nil {
			continue
		}
		mu, _ := s.Predict(c)
		p.rewards[i] += mu
	}
}

// NumStrategies returns the portfolio arity.
func (p *Portfolio) NumStrategies() int { return len(p.rewards) }
