// Package acq implements the acquisition functions compared in the EasyBO
// paper: UCB/LCB (Eq. 3), EI, PI, the weighted pBO acquisition (Eq. 4/7),
// the pHCBO high-coverage penalty (Eq. 5–6), and EasyBO's randomized-weight
// acquisition with hallucinated uncertainty (Eq. 8–9).
//
// All acquisitions are formulated for MAXIMIZATION of the objective and are
// intended to be evaluated on standardized surrogate outputs (zero-mean,
// unit-variance), which is how the weighted forms keep µ and σ commensurate.
package acq

import (
	"math"
	"math/rand"

	"easybo/internal/stats"
)

// Surrogate is the posterior interface acquisitions consume.
type Surrogate interface {
	// Predict returns the posterior mean and standard deviation at x.
	Predict(x []float64) (mu, sigma float64)
}

// Func scores a candidate point; higher is better.
type Func interface {
	Value(s Surrogate, x []float64) float64
	Name() string
}

// UCB is the upper confidence bound µ + κσ (paper Eq. 3).
type UCB struct{ Kappa float64 }

// Name implements Func.
func (UCB) Name() string { return "UCB" }

// Value implements Func.
func (u UCB) Value(s Surrogate, x []float64) float64 {
	mu, sigma := s.Predict(x)
	return mu + u.Kappa*sigma
}

// LCB is the optimistic lower-confidence-bound strategy from the paper's
// baseline list. For a maximization problem the optimistic rule coincides
// with UCB; the type exists so experiment tables can name it faithfully.
type LCB struct{ Kappa float64 }

// Name implements Func.
func (LCB) Name() string { return "LCB" }

// Value implements Func.
func (l LCB) Value(s Surrogate, x []float64) float64 {
	return UCB{Kappa: l.Kappa}.Value(s, x)
}

// EI is the expected improvement over Best by at least Xi.
type EI struct {
	Best float64
	Xi   float64
}

// Name implements Func.
func (EI) Name() string { return "EI" }

// Value implements Func.
func (e EI) Value(s Surrogate, x []float64) float64 {
	mu, sigma := s.Predict(x)
	if sigma <= 1e-12 {
		if d := mu - e.Best - e.Xi; d > 0 {
			return d
		}
		return 0
	}
	z := (mu - e.Best - e.Xi) / sigma
	v := (mu-e.Best-e.Xi)*stats.NormCDF(z) + sigma*stats.NormPDF(z)
	// Expected improvement is non-negative by definition; floating-point
	// cancellation at extreme magnitudes can produce tiny negatives or NaN.
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}

// PI is the probability of improvement over Best by at least Xi.
type PI struct {
	Best float64
	Xi   float64
}

// Name implements Func.
func (PI) Name() string { return "PI" }

// Value implements Func.
func (p PI) Value(s Surrogate, x []float64) float64 {
	mu, sigma := s.Predict(x)
	if sigma <= 1e-12 {
		if mu-p.Best-p.Xi > 0 {
			return 1
		}
		return 0
	}
	return stats.NormCDF((mu - p.Best - p.Xi) / sigma)
}

// Weighted is the pBO/EasyBO weighted acquisition (paper Eq. 4, 7, 8, 9):
//
//	α(x, w) = (1−w)·µ(x) + w·σ(x)
//
// With the EasyBO penalization the Surrogate passed in is the hallucinated
// model, making σ the deflated σ̂ of Eq. (9).
type Weighted struct{ W float64 }

// Name implements Func.
func (Weighted) Name() string { return "Weighted" }

// Value implements Func.
func (a Weighted) Value(s Surrogate, x []float64) float64 {
	mu, sigma := s.Predict(x)
	return (1-a.W)*mu + a.W*sigma
}

// PBOWeights returns the fixed weight ladder used by pBO/pHCBO in the paper:
// w_i = (i−1)/(B−1) for batch size B (w = 0 for B = 1).
func PBOWeights(b int) []float64 {
	w := make([]float64, b)
	if b <= 1 {
		return w
	}
	for i := 0; i < b; i++ {
		w[i] = float64(i) / float64(b-1)
	}
	return w
}

// SampleWeight draws EasyBO's randomized weight (paper §III-B):
// κ ~ U[0, λ], w = κ/(κ+1). The induced density of w rises toward 1,
// favouring exploration and batch diversity. λ = 6 in the paper.
func SampleWeight(rng *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	kappa := rng.Float64() * lambda
	return kappa / (kappa + 1)
}

// DefaultLambda is the paper's λ = 6.0 (§III-B).
const DefaultLambda = 6.0

// WeightDensity returns the analytic density of w under κ ~ U[0, λ],
// w = κ/(κ+1); used to regenerate the paper's Figure 2. The support is
// [0, λ/(λ+1)].
func WeightDensity(w, lambda float64) float64 {
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	wMax := lambda / (lambda + 1)
	if w < 0 || w > wMax {
		return 0
	}
	// κ = w/(1−w), dκ/dw = 1/(1−w)²; density = (1/λ)·dκ/dw.
	d := 1 - w
	return 1 / (lambda * d * d)
}

// HCPenalty is the pHCBO high-coverage penalization term (paper Eq. 6):
//
//	α_HC(x) = N_HC · (∏_{j=1}^{5} exp[(d/dx_j)^10])^{1/5}
//
// where dx_j is the distance from x to the j-th most recent query of the
// same weight index and d is a manually chosen radius. Far from all recent
// queries the term tends to the constant N_HC (which does not move the
// argmax); within radius d it explodes and vetoes the region.
type HCPenalty struct {
	NHC    float64     // penalty scale (paper: "extremely large"; default 100)
	D      float64     // veto radius in normalized input space (default 0.1)
	Recent [][]float64 // up to 5 most recent queries for this weight index
}

// Value returns the penalty to SUBTRACT from the base acquisition.
func (h HCPenalty) Value(x []float64) float64 {
	nhc := h.NHC
	if nhc == 0 {
		nhc = 100
	}
	d := h.D
	if d == 0 {
		d = 0.1
	}
	if len(h.Recent) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, q := range h.Recent {
		if n == 5 {
			break
		}
		n++
		var dist2 float64
		for i := range x {
			diff := x[i] - q[i]
			dist2 += diff * diff
		}
		dx := math.Sqrt(dist2)
		if dx < 1e-12 {
			return math.Inf(1)
		}
		e := math.Pow(d/dx, 10)
		if e > 600 { // exp overflow guard: the veto is already absolute
			e = 600
		}
		sum += e
	}
	return nhc * math.Exp(sum/5)
}
