package acq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// stubSurrogate returns fixed mean/deviation fields for testing.
type stubSurrogate struct{ mu, sigma float64 }

func (s stubSurrogate) Predict([]float64) (float64, float64) { return s.mu, s.sigma }

// fieldSurrogate computes µ and σ from simple position-dependent formulas.
type fieldSurrogate struct {
	mu    func(x []float64) float64
	sigma func(x []float64) float64
}

func (s fieldSurrogate) Predict(x []float64) (float64, float64) { return s.mu(x), s.sigma(x) }

func TestUCBMonotoneInKappa(t *testing.T) {
	s := stubSurrogate{mu: 1, sigma: 0.5}
	prev := math.Inf(-1)
	for _, k := range []float64{0, 0.5, 1, 2, 4} {
		v := UCB{Kappa: k}.Value(s, nil)
		if v <= prev {
			t.Fatalf("UCB not increasing in kappa at %v", k)
		}
		prev = v
	}
	if got := (UCB{Kappa: 2}).Value(s, nil); got != 2 {
		t.Fatalf("UCB = %v, want 2", got)
	}
	if (LCB{Kappa: 2}).Value(s, nil) != (UCB{Kappa: 2}).Value(s, nil) {
		t.Fatal("LCB must alias UCB for maximization")
	}
}

func TestEIProperties(t *testing.T) {
	// EI >= 0 always; 0 when sigma = 0 and mu <= best; positive when mu > best.
	f := func(mu, sigma, best float64) bool {
		sigma = math.Abs(sigma)
		v := EI{Best: best}.Value(stubSurrogate{mu, sigma}, nil)
		return v >= 0 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if v := (EI{Best: 2}).Value(stubSurrogate{1, 0}, nil); v != 0 {
		t.Fatalf("EI = %v, want 0", v)
	}
	if v := (EI{Best: 1}).Value(stubSurrogate{3, 0}, nil); math.Abs(v-2) > 1e-12 {
		t.Fatalf("EI = %v, want 2", v)
	}
	// More uncertainty at equal mean => more EI.
	lowS := EI{Best: 0}.Value(stubSurrogate{0, 0.1}, nil)
	highS := EI{Best: 0}.Value(stubSurrogate{0, 1.0}, nil)
	if highS <= lowS {
		t.Fatal("EI must grow with sigma at the incumbent mean")
	}
}

func TestPIProperties(t *testing.T) {
	if v := (PI{Best: 0}).Value(stubSurrogate{0, 1}, nil); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("PI at the incumbent mean = %v, want 0.5", v)
	}
	if v := (PI{Best: 0}).Value(stubSurrogate{10, 1}, nil); v < 0.999 {
		t.Fatalf("PI far above best = %v", v)
	}
	if v := (PI{Best: 0}).Value(stubSurrogate{-10, 1}, nil); v > 1e-3 {
		t.Fatalf("PI far below best = %v", v)
	}
	if v := (PI{Best: 0}).Value(stubSurrogate{1, 0}, nil); v != 1 {
		t.Fatalf("deterministic improvement PI = %v, want 1", v)
	}
	if v := (PI{Best: 2}).Value(stubSurrogate{1, 0}, nil); v != 0 {
		t.Fatalf("deterministic non-improvement PI = %v, want 0", v)
	}
}

func TestWeightedTradeoff(t *testing.T) {
	s := stubSurrogate{mu: 2, sigma: 1}
	if v := (Weighted{W: 0}).Value(s, nil); v != 2 {
		t.Fatalf("w=0 must be pure exploitation, got %v", v)
	}
	if v := (Weighted{W: 1}).Value(s, nil); v != 1 {
		t.Fatalf("w=1 must be pure exploration, got %v", v)
	}
	if v := (Weighted{W: 0.25}).Value(s, nil); math.Abs(v-1.75) > 1e-12 {
		t.Fatalf("w=0.25 = %v", v)
	}
}

func TestPBOWeights(t *testing.T) {
	w := PBOWeights(5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-15 {
			t.Fatalf("PBOWeights(5) = %v", w)
		}
	}
	if got := PBOWeights(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("PBOWeights(1) = %v", got)
	}
}

func TestSampleWeightDistribution(t *testing.T) {
	// Paper §III-B / Fig. 2: w concentrates near 1, support [0, λ/(λ+1)].
	rng := rand.New(rand.NewSource(1))
	n := 100000
	wMax := DefaultLambda / (DefaultLambda + 1)
	var nearMax, nearZero int
	for i := 0; i < n; i++ {
		w := SampleWeight(rng, 0) // 0 => default λ
		if w < 0 || w > wMax+1e-12 {
			t.Fatalf("w out of support: %v", w)
		}
		if w > wMax-0.05 {
			nearMax++
		}
		if w < 0.05 {
			nearZero++
		}
	}
	// Density near the top of the support is (λ+1)²/λ ≈ 8.2× the density
	// near zero (1/λ); with equal window widths, counts must reflect that.
	if nearMax < 4*nearZero {
		t.Fatalf("w not concentrated near 1: top=%d bottom=%d", nearMax, nearZero)
	}
}

func TestWeightDensityIntegratesToOne(t *testing.T) {
	// ∫ density dw over the support must be 1.
	n := 100000
	wMax := DefaultLambda / (DefaultLambda + 1)
	h := wMax / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		w := (float64(i) + 0.5) * h
		sum += WeightDensity(w, DefaultLambda) * h
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("density integrates to %v", sum)
	}
	if WeightDensity(-0.1, 6) != 0 || WeightDensity(0.99, 6) != 0 {
		t.Fatal("density must vanish outside the support")
	}
	// Monotone increasing on the support.
	if WeightDensity(0.1, 6) >= WeightDensity(0.8, 6) {
		t.Fatal("density must increase toward w=1")
	}
}

func TestHCPenaltyShape(t *testing.T) {
	recent := [][]float64{{0.5, 0.5}}
	p := HCPenalty{NHC: 100, D: 0.1, Recent: recent}
	// Far away: penalty ≈ NHC (constant shift).
	far := p.Value([]float64{0.0, 0.0})
	if math.Abs(far-100) > 1 {
		t.Fatalf("far penalty = %v, want ≈100", far)
	}
	// Inside the veto radius: explodes.
	near := p.Value([]float64{0.5, 0.52})
	if near < 1e6 {
		t.Fatalf("near penalty = %v, want huge", near)
	}
	// At an exact previous query: infinite.
	if !math.IsInf(p.Value([]float64{0.5, 0.5}), 1) {
		t.Fatal("exact repeat must be vetoed infinitely")
	}
	// Empty history: no penalty.
	if (HCPenalty{}).Value([]float64{0.1}) != 0 {
		t.Fatal("empty history must not penalize")
	}
	// Only the 5 most recent queries count (no overflow with many points).
	many := make([][]float64, 50)
	for i := range many {
		many[i] = []float64{float64(i), float64(i)}
	}
	v := HCPenalty{NHC: 100, D: 0.1, Recent: many}.Value([]float64{100, 100})
	if math.IsInf(v, 1) || math.IsNaN(v) {
		t.Fatalf("penalty with long history = %v", v)
	}
}

func TestAcquisitionsOnFieldSurrogate(t *testing.T) {
	// A surrogate whose σ has a bump at x=0.3 and µ a bump at x=0.7: pure
	// exploration (w=1) must prefer 0.3, pure exploitation (w=0) 0.7.
	s := fieldSurrogate{
		mu:    func(x []float64) float64 { return math.Exp(-50 * (x[0] - 0.7) * (x[0] - 0.7)) },
		sigma: func(x []float64) float64 { return math.Exp(-50 * (x[0] - 0.3) * (x[0] - 0.3)) },
	}
	argmax := func(f Func) float64 {
		bestX, bestV := 0.0, math.Inf(-1)
		for i := 0; i <= 1000; i++ {
			x := []float64{float64(i) / 1000}
			if v := f.Value(s, x); v > bestV {
				bestV, bestX = v, x[0]
			}
		}
		return bestX
	}
	if x := argmax(Weighted{W: 0}); math.Abs(x-0.7) > 0.01 {
		t.Fatalf("exploitation argmax = %v", x)
	}
	if x := argmax(Weighted{W: 1}); math.Abs(x-0.3) > 0.01 {
		t.Fatalf("exploration argmax = %v", x)
	}
	if n := (UCB{}).Name() + (EI{}).Name() + (PI{}).Name() + (Weighted{}).Name() + (LCB{}).Name(); n == "" {
		t.Fatal("names must be non-empty")
	}
}
