package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Options configures one load run against a live easybod endpoint.
type Options struct {
	// BaseURL is the daemon endpoint ("http://127.0.0.1:7823"). Required.
	BaseURL string
	// Sessions is the number of concurrent sessions driven (default 8).
	Sessions int
	// WorkersPerSession is the worker goroutines per session issuing
	// ask/tell round trips (default 1).
	WorkersPerSession int
	// Duration bounds the run (default 10s).
	Duration time.Duration
	// SeedGroups partitions sessions into groups sharing a seed (default
	// 2). Same-seed sessions propose bitwise-identical Latin-hypercube
	// designs, so every group beyond the first is a repeated-point
	// workload — the evaluation cache's natural traffic.
	SeedGroups int
	// Dim is the design-space dimensionality (default 4).
	Dim int
	// InitPoints is each session's Latin-hypercube design size (default
	// 32). Sessions run with an unbounded eval budget so the run is
	// time-bounded, not budget-bounded.
	InitPoints int
	// EvalDelay simulates per-evaluation simulator cost on fresh (uncached)
	// evaluations (default 0: the daemon itself is the bottleneck under
	// test).
	EvalDelay time.Duration
	// Testbench labels the synthetic objective for the evaluation cache;
	// empty opts the run out of caching entirely.
	Testbench string
	// Surrogate selects the sessions' backend (default "features": flat
	// per-suggest cost, so throughput does not decay over a long run).
	Surrogate string
	// SessionPrefix namespaces session ids (default "loadgen"), letting
	// concurrent runs share a daemon.
	SessionPrefix string
	// MaxRetries bounds 429/5xx retries per call (default 50; sheds are
	// expected traffic under admission-control runs).
	MaxRetries int
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

func (o *Options) normalize() error {
	if o.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	if o.Sessions <= 0 {
		o.Sessions = 8
	}
	if o.WorkersPerSession <= 0 {
		o.WorkersPerSession = 1
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.SeedGroups <= 0 {
		o.SeedGroups = 2
	}
	if o.SeedGroups > o.Sessions {
		o.SeedGroups = o.Sessions
	}
	if o.Dim <= 0 {
		o.Dim = 4
	}
	if o.InitPoints <= 0 {
		o.InitPoints = 32
	}
	if o.Surrogate == "" {
		o.Surrogate = "features"
	}
	if o.SessionPrefix == "" {
		o.SessionPrefix = "loadgen"
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 50
	}
	if o.Client == nil {
		// net/http's zero-value transport keeps only 2 idle connections per
		// host; with hundreds of workers hammering one daemon that means a
		// TCP dial (and slow-start) on nearly every round trip, measuring
		// the dialer instead of the daemon. Size the idle pool to the whole
		// worker fleet so steady state is pure keep-alive traffic.
		conns := o.Sessions*o.WorkersPerSession + 4
		o.Client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        conns,
				MaxIdleConnsPerHost: conns,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return nil
}

// Quantiles summarizes one latency distribution in nanoseconds.
type Quantiles struct {
	P50 int64 `json:"p50_ns"`
	P95 int64 `json:"p95_ns"`
	P99 int64 `json:"p99_ns"`
	Max int64 `json:"max_ns"`
}

// Summary is one load run's result.
type Summary struct {
	Sessions    int           `json:"sessions"`
	Workers     int           `json:"workers"` // total worker goroutines
	Elapsed     time.Duration `json:"elapsed_ns"`
	Asks        int64         `json:"asks"`  // successful ask round trips
	Tells       int64         `json:"tells"` // successful tell round trips
	Errors      int64         `json:"errors"`
	Shed        int64         `json:"shed"` // 429 responses absorbed (retried, not errors)
	CachedHits  int64         `json:"cache_hits"`
	Joins       int64         `json:"inflight_joins"`
	Waits       int64         `json:"waits"` // ask returned "wait"
	AsksPerSec  float64       `json:"asks_per_sec"`
	TellsPerSec float64       `json:"tells_per_sec"`
	AskLatency  Quantiles     `json:"ask_latency"`
	TellLatency Quantiles     `json:"tell_latency"`
}

// Client is the harness's minimal retrying JSON caller, exported so the
// shed-equivalence test drives a throttled daemon through the exact code
// path the load run uses. 429s and 5xx are retried with a short capped
// backoff; the daemon's Retry-After (a 1s floor meant for production
// workers) is deliberately NOT honored — the harness's whole job is to
// hold the daemon at its admission limit and measure, and idling a second
// per shed would measure the harness's politeness instead. cmd/easybo is
// the client that honors it.
type Client struct {
	HC         *http.Client
	Base       string
	MaxRetries int
}

// Call performs one JSON round trip. shed counts 429 responses absorbed
// along the way; lat is the wall-clock of the final (successful or
// decisive) attempt only, so admission backoff does not pollute the
// service-latency distribution.
func (c *Client) Call(ctx context.Context, method, path string, body, out any) (shed int64, lat time.Duration, err error) {
	var payload []byte
	if body != nil {
		if payload, err = json.Marshal(body); err != nil {
			return 0, 0, err
		}
	}
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, rerr := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
		if rerr != nil {
			return shed, 0, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		start := time.Now()
		resp, derr := c.HC.Do(req)
		lat = time.Since(start)
		if derr != nil {
			if ctx.Err() != nil {
				return shed, lat, ctx.Err()
			}
			err = derr
		} else {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else if resp.StatusCode == http.StatusTooManyRequests {
				shed++
				err = fmt.Errorf("loadgen: shed (HTTP 429)")
			} else if resp.StatusCode/100 != 2 {
				return shed, lat, fmt.Errorf("loadgen: %s %s: HTTP %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
			} else {
				if out != nil {
					if uerr := json.Unmarshal(data, out); uerr != nil {
						return shed, lat, uerr
					}
				}
				return shed, lat, nil
			}
		}
		if attempt >= c.MaxRetries {
			return shed, lat, fmt.Errorf("loadgen: giving up after %d attempts: %w", attempt+1, err)
		}
		select {
		case <-ctx.Done():
			return shed, lat, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// objective is the synthetic simulator: a cheap deterministic quadratic,
// so identical points produce identical values and the run measures the
// daemon, not the objective.
func objective(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += (v - 0.3) * (v - 0.3)
	}
	return -s
}

// askResp mirrors serve.Ask over the wire.
type askResp struct {
	Status     string    `json:"status"`
	ProposalID int       `json:"proposal_id"`
	X          []float64 `json:"x"`
	Eval       string    `json:"eval"`
	Y          *float64  `json:"y"`
}

// worker accumulates its own counters and histograms; merged after the run
// so the measurement path shares nothing.
type workerStats struct {
	asks, tells, errors, shed int64
	cached, joins, waits      int64
	askLat, tellLat           histogram
}

// Run drives the load: Sessions sessions × WorkersPerSession workers of
// ask → evaluate → tell round trips for Duration, against the daemon at
// BaseURL. Sessions are created at start and deleted afterward (best
// effort). The returned summary aggregates every worker.
func Run(ctx context.Context, o Options) (*Summary, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	cl := &Client{HC: o.Client, Base: o.BaseURL, MaxRetries: o.MaxRetries}

	ids := make([]string, o.Sessions)
	lo, hi := make([]float64, o.Dim), make([]float64, o.Dim)
	for i := range hi {
		hi[i] = 1
	}
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%d", o.SessionPrefix, i)
		body := map[string]any{
			"id": ids[i],
			"lo": lo, "hi": hi,
			"init_points": o.InitPoints,
			"max_evals":   0, // unbounded: the run is time-limited
			"seed":        int64(i % o.SeedGroups),
			"surrogate":   o.Surrogate,
			"fit_iters":   8, "refit_every": 8,
		}
		if o.Testbench != "" {
			body["testbench"] = o.Testbench
		}
		if _, _, err := cl.Call(ctx, http.MethodPost, "/sessions", body, nil); err != nil {
			return nil, fmt.Errorf("loadgen: creating session %s: %w", ids[i], err)
		}
	}
	defer func() {
		for _, id := range ids {
			req, err := http.NewRequest(http.MethodDelete, o.BaseURL+"/sessions/"+id, nil)
			if err == nil {
				if resp, err := o.Client.Do(req); err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	runCtx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()

	nWorkers := o.Sessions * o.WorkersPerSession
	stats := make([]workerStats, nWorkers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drive(runCtx, cl, ids[w%o.Sessions], o.EvalDelay, &stats[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := &Summary{Sessions: o.Sessions, Workers: nWorkers, Elapsed: elapsed}
	var askH, tellH histogram
	for i := range stats {
		st := &stats[i]
		sum.Asks += st.asks
		sum.Tells += st.tells
		sum.Errors += st.errors
		sum.Shed += st.shed
		sum.CachedHits += st.cached
		sum.Joins += st.joins
		sum.Waits += st.waits
		askH.merge(&st.askLat)
		tellH.merge(&st.tellLat)
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		sum.AsksPerSec = float64(sum.Asks) / secs
		sum.TellsPerSec = float64(sum.Tells) / secs
	}
	sum.AskLatency = Quantiles{P50: askH.quantile(0.50), P95: askH.quantile(0.95), P99: askH.quantile(0.99), Max: askH.max}
	sum.TellLatency = Quantiles{P50: tellH.quantile(0.50), P95: tellH.quantile(0.95), P99: tellH.quantile(0.99), Max: tellH.max}
	return sum, nil
}

// drive is one worker's loop: ask, act on the cache hint, tell. The
// context deadline ends the run; in-flight round trips finish (their
// context is the run context, so a straggler is cut off, counted as
// neither success nor error).
func drive(ctx context.Context, cl *Client, session string, evalDelay time.Duration, st *workerStats) {
	base := "/sessions/" + session
	for {
		if ctx.Err() != nil {
			return
		}
		var a askResp
		shed, lat, err := cl.Call(ctx, http.MethodPost, base+"/ask", map[string]any{}, &a)
		st.shed += shed
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			st.errors++
			continue
		}
		st.asks++
		st.askLat.observe(lat)
		switch a.Status {
		case "ok":
		case "wait":
			st.waits++
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		default: // "done" — unbounded sessions never finish, but be safe
			return
		}
		var y float64
		switch a.Eval {
		case "cached":
			st.cached++
			if a.Y != nil {
				y = *a.Y
			}
		case "inflight":
			// The daemon delivers this proposal itself when the in-flight
			// evaluation lands; this worker moves straight to its next ask.
			st.joins++
			continue
		default:
			y = objective(a.X)
			if evalDelay > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(evalDelay):
				}
			}
		}
		pid := a.ProposalID
		tell := map[string]any{"proposal_id": pid, "y": y}
		shed, lat, err = cl.Call(ctx, http.MethodPost, base+"/tell", tell, nil)
		st.shed += shed
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			st.errors++
			continue
		}
		st.tells++
		st.tellLat.observe(lat)
	}
}
