package loadgen_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"easybo/internal/loadgen"
	"easybo/internal/serve"
)

// TestRunSmoke drives a short load against an in-process daemon: the run
// must complete clean (zero errors), make progress on every axis, and —
// because same-seed session groups propose identical designs — produce
// repeated-point cache traffic (hits or in-flight joins).
func TestRunSmoke(t *testing.T) {
	sv := serve.NewServerWith(serve.ServerOptions{CacheSize: 1024})
	if _, err := sv.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer sv.Close()
	ts := httptest.NewServer(sv)
	defer ts.Close()

	sum, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:       ts.URL,
		Sessions:      4,
		Duration:      1500 * time.Millisecond,
		SeedGroups:    2,
		Dim:           3,
		InitPoints:    16,
		Testbench:     "smoke-tb",
		SessionPrefix: "runsmoke",
		Client:        ts.Client(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load run hit %d errors", sum.Errors)
	}
	if sum.Asks == 0 || sum.Tells == 0 {
		t.Fatalf("no progress: asks=%d tells=%d", sum.Asks, sum.Tells)
	}
	if sum.CachedHits+sum.Joins == 0 {
		t.Fatal("same-seed groups produced no cache traffic (hits or joins)")
	}
	if sum.AsksPerSec <= 0 {
		t.Fatalf("asks_per_sec = %v, want > 0", sum.AsksPerSec)
	}
	if sum.AskLatency.P99 <= 0 || sum.AskLatency.P99 < sum.AskLatency.P50 {
		t.Fatalf("ask latency quantiles inconsistent: %+v", sum.AskLatency)
	}
	// The benchjson rows derive from the summary without inventing numbers.
	rows := sum.BenchResults()
	if len(rows) != 4 {
		t.Fatalf("BenchResults returned %d rows, want 4", len(rows))
	}
	if rows[0].Name != "ServeAskThroughput" || rows[0].Iterations != sum.Asks {
		t.Fatalf("ask throughput row mismatch: %+v", rows[0])
	}
	if rows[1].Name != "ServeTellThroughput" || rows[1].Iterations != sum.Tells {
		t.Fatalf("tell throughput row mismatch: %+v", rows[1])
	}
	if rows[2].NsPerOp != float64(sum.AskLatency.P99) {
		t.Fatalf("latency row ns_per_op %v != p99 %d", rows[2].NsPerOp, sum.AskLatency.P99)
	}
	// A suffix renames every row — the durable leg must not collide with
	// the in-memory leg in a merged report.
	for i, r := range sum.BenchResultsNamed("Durable") {
		if r.Name != rows[i].Name+"Durable" {
			t.Fatalf("suffixed row %d = %q, want %q", i, r.Name, rows[i].Name+"Durable")
		}
	}

	// The daemon's own /statz agrees that cache traffic happened.
	stz := sv.Stats()
	if stz.Cache == nil {
		t.Fatal("daemon /statz reports no cache despite CacheSize > 0")
	}
	if stz.Cache.Hits+stz.Cache.Joins == 0 {
		t.Fatal("daemon cache saw no hits or joins")
	}
}
