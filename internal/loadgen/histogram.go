// Package loadgen drives synthetic ask/tell load against an easybod
// daemon and reports throughput and latency in the repository's benchjson
// format, so `cmd/benchcmp` can gate serving-path regressions exactly like
// kernel benchmarks. cmd/easyboload is the CLI; the shed-equivalence test
// under cmd/easyboload is the correctness side of the same harness.
//
// loadgen sits outside the determinism boundary (it is a measurement tool,
// not replayed state), so it uses the wall clock freely.
package loadgen

import (
	"math"
	"math/bits"
	"time"
)

// histogram is a fixed-size log-bucketed latency histogram: 8 sub-buckets
// per power-of-two octave from ~1µs to ~4.5min, ~9% worst-case relative
// error per bucket. Fixed arrays make per-worker histograms cheap to keep
// and merge, so the hot measurement path takes no locks.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave
	histMinBits = 10               // first octave starts at 2^10 ns ≈ 1µs
	histOctaves = 28               // top octave ends at 2^38 ns ≈ 4.6min
	histBuckets = histOctaves*histSub + 1
)

type histogram struct {
	counts [histBuckets]int64
	n      int64
	max    int64
}

// bucketOf maps a latency in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 1<<histMinBits {
		return 0
	}
	top := bits.Len64(uint64(ns)) - 1 // position of the highest set bit
	oct := top - histMinBits
	if oct >= histOctaves {
		return histBuckets - 1
	}
	sub := (ns >> (top - histSubBits)) & (histSub - 1)
	return oct*histSub + int(sub)
}

// bucketUpper is the inclusive upper edge of bucket i in nanoseconds, so
// quantiles report conservatively (never lower than the true value). The
// overflow bucket is unbounded; quantile clamps it to the exact observed
// maximum.
func bucketUpper(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	oct, sub := i/histSub, int64(i%histSub)
	return (histSub + sub + 1) << (histMinBits + oct - histSubBits)
}

func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)]++
	h.n++
	if ns > h.max {
		h.max = ns
	}
}

func (h *histogram) merge(o *histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the q-quantile (0 < q <= 1) in nanoseconds: the upper
// edge of the bucket where the cumulative count crosses q·n, clamped to
// the exact observed maximum. Zero when empty.
func (h *histogram) quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			up := bucketUpper(i)
			if up > h.max {
				return h.max
			}
			return up
		}
	}
	return h.max
}
