package loadgen

// BenchResult mirrors cmd/benchjson's Result JSON shape, so a load run's
// output merges into the committed BENCH_*.json baselines and cmd/benchcmp
// gates serving-path throughput and latency exactly like kernel
// benchmarks. Duplicated rather than imported: benchjson is a main
// package, and the contract is the JSON encoding, not the Go type.
type BenchResult struct {
	Name        string             `json:"name"`
	Package     string             `json:"package"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

const benchPackage = "easybo/internal/loadgen"

// BenchResults renders the summary as benchjson benchmarks. ns_per_op is
// the gated axis in every row — mean time per ask (or tell) for the
// throughput rows, the p99 itself for the latency rows — so benchcmp's
// ratio test reads naturally ("2× slower fails the gate") without learning
// new semantics. Everything else rides in metrics for humans and
// dashboards.
func (s *Summary) BenchResults() []BenchResult { return s.BenchResultsNamed("") }

// BenchResultsNamed is BenchResults with a name suffix appended to every
// row ("Durable" → ServeTellThroughputDurable, …). benchjson's merge keeps
// the fastest result per name and benchcmp compares by name, so distinct
// workloads — the in-memory leg and the fsync=always leg — must publish
// under distinct names or the slower one silently vanishes.
func (s *Summary) BenchResultsNamed(suffix string) []BenchResult {
	askNs := 0.0
	if s.AsksPerSec > 0 {
		askNs = 1e9 / s.AsksPerSec
	}
	tellNs := 0.0
	if s.TellsPerSec > 0 {
		tellNs = 1e9 / s.TellsPerSec
	}
	return []BenchResult{
		{
			Name:       "ServeAskThroughput" + suffix,
			Package:    benchPackage,
			Iterations: s.Asks,
			NsPerOp:    askNs,
			Metrics: map[string]float64{
				"asks_per_sec":   s.AsksPerSec,
				"tells_per_sec":  s.TellsPerSec,
				"sessions":       float64(s.Sessions),
				"workers":        float64(s.Workers),
				"errors":         float64(s.Errors),
				"shed":           float64(s.Shed),
				"cache_hits":     float64(s.CachedHits),
				"inflight_joins": float64(s.Joins),
			},
		},
		{
			Name:       "ServeTellThroughput" + suffix,
			Package:    benchPackage,
			Iterations: s.Tells,
			NsPerOp:    tellNs,
			Metrics: map[string]float64{
				"tells_per_sec": s.TellsPerSec,
				"asks_per_sec":  s.AsksPerSec,
				"sessions":      float64(s.Sessions),
				"workers":       float64(s.Workers),
				"errors":        float64(s.Errors),
				"shed":          float64(s.Shed),
			},
		},
		{
			Name:       "ServeAskLatencyP99" + suffix,
			Package:    benchPackage,
			Iterations: s.Asks,
			NsPerOp:    float64(s.AskLatency.P99),
			Metrics: map[string]float64{
				"p50_ns": float64(s.AskLatency.P50),
				"p95_ns": float64(s.AskLatency.P95),
				"max_ns": float64(s.AskLatency.Max),
			},
		},
		{
			Name:       "ServeTellLatencyP99" + suffix,
			Package:    benchPackage,
			Iterations: s.Tells,
			NsPerOp:    float64(s.TellLatency.P99),
			Metrics: map[string]float64{
				"p50_ns": float64(s.TellLatency.P50),
				"p95_ns": float64(s.TellLatency.P95),
				"max_ns": float64(s.TellLatency.Max),
			},
		},
	}
}
