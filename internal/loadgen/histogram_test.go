package loadgen

import (
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	// Everything below the first octave collapses into bucket 0.
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d, want 0", got)
	}
	if got := bucketOf(1<<histMinBits - 1); got != 0 {
		t.Fatalf("bucketOf(%d) = %d, want 0", 1<<histMinBits-1, got)
	}
	// Buckets are monotone and every value is at most its bucket's upper edge.
	prev := -1
	for _, ns := range []int64{1 << 10, 1<<10 + 1, 1500, 2048, 3000, 1 << 20, 1 << 30, 1<<38 - 1, 1 << 38, 1 << 60} {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", ns, b, prev)
		}
		prev = b
		if up := bucketUpper(b); ns > up {
			t.Fatalf("value %d above its bucket %d upper edge %d", ns, b, up)
		}
	}
	// Worst-case relative bucket error stays under ~15% across mid-range
	// octaves (8 sub-buckets per octave).
	for _, ns := range []int64{5_000, 77_777, 1_234_567, 98_765_432} {
		up := bucketUpper(bucketOf(ns))
		if rel := float64(up-ns) / float64(ns); rel > 0.15 {
			t.Fatalf("bucket error %.2f too large for %d (upper %d)", rel, ns, up)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	if got := h.quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 100 observations of 1ms and one of 100ms: p50 brackets 1ms, p99/max
	// clamp to the exact observed maximum.
	for i := 0; i < 100; i++ {
		h.observe(time.Millisecond)
	}
	h.observe(100 * time.Millisecond)
	p50 := h.quantile(0.50)
	if p50 < int64(time.Millisecond) || p50 > int64(time.Millisecond)*12/10 {
		t.Fatalf("p50 = %d, want ~1ms upper edge", p50)
	}
	if got := h.quantile(1.0); got != h.max {
		t.Fatalf("p100 = %d, want exact max %d", got, h.max)
	}
	if h.max != int64(100*time.Millisecond) {
		t.Fatalf("max = %d, want %d", h.max, int64(100*time.Millisecond))
	}

	// merge is additive.
	var a, b histogram
	a.observe(2 * time.Millisecond)
	b.observe(8 * time.Millisecond)
	b.observe(8 * time.Millisecond)
	a.merge(&b)
	if a.n != 3 {
		t.Fatalf("merged n = %d, want 3", a.n)
	}
	if a.max != int64(8*time.Millisecond) {
		t.Fatalf("merged max = %d, want 8ms", a.max)
	}
	if got := a.quantile(0.99); got < int64(8*time.Millisecond) {
		t.Fatalf("merged p99 = %d, want >= 8ms", got)
	}
}
