// Package profiling provides the shared -cpuprofile/-memprofile plumbing
// of the command-line tools, so perf investigations never need code edits.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins a CPU profile (when cpu is non-empty) and returns a stop
// function that terminates it and writes a heap profile (when mem is
// non-empty). The stop function is idempotent, so commands can both defer
// it and call it on error-exit paths — an os.Exit that skipped it would
// leave a truncated CPU profile behind.
func Start(cpu, mem string) (stop func(), err error) {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpu != "" {
				pprof.StopCPUProfile()
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
					return
				}
				defer f.Close()
				runtime.GC() // settle the heap so the profile reflects live data
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
				}
			}
		})
	}, nil
}
