package easybo_test

import (
	"context"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"easybo"
	"easybo/circuits"
)

func brainFast(opts *easybo.Options) {
	opts.InitPoints = 10
	opts.FitIters = 12
	opts.RefitEvery = 10
}

func TestOptimizeBranin(t *testing.T) {
	p := circuits.Branin()
	opts := easybo.Options{Workers: 4, MaxEvals: 40, Seed: 1}
	brainFast(&opts)
	res, err := easybo.Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 40 {
		t.Fatalf("evaluations = %d", len(res.Evaluations))
	}
	if res.BestY < -3 {
		t.Fatalf("Branin best %v too far from 0", res.BestY)
	}
	if res.Seconds <= 0 {
		t.Fatal("no virtual time accounted")
	}
	for i := range res.BestX {
		if res.BestX[i] < p.Lo[i] || res.BestX[i] > p.Hi[i] {
			t.Fatalf("best out of box: %v", res.BestX)
		}
	}
}

func TestOptimizeAllAlgorithms(t *testing.T) {
	p := circuits.Branin()
	for _, algo := range []easybo.Algorithm{
		easybo.EasyBO, easybo.EasyBOA, easybo.EasyBOSync, easybo.EasyBOS,
		easybo.PBO, easybo.PHCBO, easybo.EI, easybo.LCB, easybo.RandomSearch,
	} {
		opts := easybo.Options{Algorithm: algo, Workers: 3, MaxEvals: 25, Seed: 2}
		brainFast(&opts)
		res, err := easybo.Optimize(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Evaluations) != 25 {
			t.Fatalf("%s: evaluations = %d", algo, len(res.Evaluations))
		}
	}
	// DE ignores Workers and runs its own budget.
	res, err := easybo.Optimize(p, easybo.Options{Algorithm: easybo.DE, MaxEvals: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 300 {
		t.Fatalf("DE evaluations = %d", len(res.Evaluations))
	}
}

func TestOptimizeUnknownAlgorithm(t *testing.T) {
	if _, err := easybo.Optimize(circuits.Branin(), easybo.Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

func TestOptimizeValidation(t *testing.T) {
	bad := easybo.Problem{Name: "bad", Lo: []float64{1}, Hi: []float64{0},
		Objective: func([]float64) float64 { return 0 }}
	if _, err := easybo.Optimize(bad, easybo.Options{}); err == nil {
		t.Fatal("inverted bounds must fail")
	}
	noObj := easybo.Problem{Name: "noobj", Lo: []float64{0}, Hi: []float64{1}}
	if _, err := easybo.Optimize(noObj, easybo.Options{}); err == nil {
		t.Fatal("missing objective must fail")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	p := circuits.Hartmann6()
	opts := easybo.Options{Workers: 5, MaxEvals: 30, Seed: 11}
	brainFast(&opts)
	r1, err := easybo.Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := easybo.Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestY != r2.BestY || r1.Seconds != r2.Seconds {
		t.Fatal("Optimize not deterministic for fixed seed")
	}
}

func TestLoopAskTell(t *testing.T) {
	p := circuits.Branin()
	opts := easybo.Options{Seed: 3, InitPoints: 8, FitIters: 12}
	loop, err := easybo.NewLoop(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Drive with 3 in-flight evaluations, 30 total.
	type job struct{ x []float64 }
	var inflight []job
	completed := 0
	for completed < 30 {
		for len(inflight) < 3 {
			x, err := loop.Suggest()
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if x[i] < p.Lo[i] || x[i] > p.Hi[i] {
					t.Fatalf("suggestion out of box: %v", x)
				}
			}
			inflight = append(inflight, job{x})
		}
		if loop.Pending() != 3 {
			t.Fatalf("pending = %d, want 3", loop.Pending())
		}
		// Complete the oldest.
		j := inflight[0]
		inflight = inflight[1:]
		if err := loop.Observe(j.x, p.Objective(j.x)); err != nil {
			t.Fatal(err)
		}
		completed++
	}
	if loop.Observations() != 30 {
		t.Fatalf("observations = %d", loop.Observations())
	}
	bx, by := loop.Best()
	if bx == nil || math.IsInf(by, -1) {
		t.Fatal("no best tracked")
	}
	if by < -20 {
		t.Fatalf("ask-tell best %v unreasonably poor", by)
	}
}

func TestLoopObserveUnsuggestedAndErrors(t *testing.T) {
	p := circuits.Branin()
	loop, err := easybo.NewLoop(p, easybo.Options{Seed: 4, InitPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Observing external data is allowed.
	if err := loop.Observe([]float64{0, 5}, p.Objective([]float64{0, 5})); err != nil {
		t.Fatal(err)
	}
	if err := loop.Observe([]float64{1}, 0); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
	if err := loop.Observe([]float64{0, 1}, math.NaN()); err == nil {
		t.Fatal("NaN observation must fail")
	}
	// Loop rejects non-EasyBO algorithms.
	if _, err := easybo.NewLoop(p, easybo.Options{Algorithm: easybo.PBO}); err == nil {
		t.Fatal("Loop must reject sync algorithms")
	}
}

func TestOptimizeParallelRealGoroutines(t *testing.T) {
	p := circuits.Branin()
	opts := easybo.Options{Workers: 4, MaxEvals: 25, Seed: 5, InitPoints: 10, FitIters: 10}
	res, err := easybo.OptimizeParallel(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 25 {
		t.Fatalf("evaluations = %d", len(res.Evaluations))
	}
	if res.BestX == nil {
		t.Fatal("no best")
	}
}

func TestCircuitProblemsExposed(t *testing.T) {
	op := circuits.OpAmp()
	if len(op.Lo) != 10 || len(circuits.OpAmpVariables()) != 10 {
		t.Fatal("op-amp must have 10 variables")
	}
	ce := circuits.ClassE()
	if len(ce.Lo) != 12 || len(circuits.ClassEVariables()) != 12 {
		t.Fatal("class-E must have 12 variables")
	}
	// Mid-box evaluations are finite and costed.
	mid := func(p easybo.Problem) []float64 {
		x := make([]float64, len(p.Lo))
		for i := range x {
			x[i] = 0.5 * (p.Lo[i] + p.Hi[i])
		}
		return x
	}
	if y := op.Objective(mid(op)); math.IsNaN(y) {
		t.Fatal("op-amp objective NaN at midpoint")
	}
	if c := op.Cost(mid(op)); c <= 0 {
		t.Fatal("op-amp cost must be positive")
	}
	gain, ugf, pm, _ := circuits.OpAmpPerformance(mid(op))
	if math.IsNaN(gain) || math.IsNaN(ugf) || math.IsNaN(pm) {
		t.Fatal("op-amp performance NaN")
	}
	if y := ce.Objective(mid(ce)); math.IsNaN(y) {
		t.Fatal("class-E objective NaN at midpoint")
	}
	pout, pae, _ := circuits.ClassEPerformance(mid(ce))
	if math.IsNaN(pout) || math.IsNaN(pae) {
		t.Fatal("class-E performance NaN")
	}
	// Synthetic wrappers.
	if v := circuits.Ackley(3).Objective([]float64{0, 0, 0}); math.Abs(v) > 1e-12 {
		t.Fatalf("Ackley max at origin must be ≈0, got %v", v)
	}
	if circuits.Rosenbrock(2).Objective([]float64{1, 1}) != 0 {
		t.Fatal("Rosenbrock max at (1,1) must be 0")
	}
	if circuits.Hartmann6().Objective(make([]float64, 6)) < 0 {
		t.Fatal("Hartmann6 must be positive somewhere near origin corner")
	}
}

func TestOptimizeNewAlgorithms(t *testing.T) {
	p := circuits.Branin()
	for _, algo := range []easybo.Algorithm{easybo.TS, easybo.GPHedge} {
		opts := easybo.Options{Algorithm: algo, Workers: 2, MaxEvals: 25, Seed: 6}
		brainFast(&opts)
		res, err := easybo.Optimize(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Evaluations) != 25 {
			t.Fatalf("%s: evaluations = %d", algo, len(res.Evaluations))
		}
	}
}

func TestLoopSuggestBeforeObservations(t *testing.T) {
	// Suggesting more points than the initial design before observing
	// anything exercises the random-fallback branch (fewer than 2
	// observations, no surrogate yet).
	p := circuits.Branin()
	loop, err := easybo.NewLoop(p, easybo.Options{Seed: 21, InitPoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // 2 design points + 3 random fallbacks
		x, err := loop.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		for j := range x {
			if x[j] < p.Lo[j] || x[j] > p.Hi[j] {
				t.Fatalf("fallback suggestion out of box: %v", x)
			}
		}
	}
	if loop.Pending() != 5 {
		t.Fatalf("pending = %d", loop.Pending())
	}
	// Best before any observation.
	if bx, by := loop.Best(); bx != nil || !math.IsInf(by, -1) {
		t.Fatal("Best must be empty before observations")
	}
}

func TestLoopHyperRefitCadence(t *testing.T) {
	// Run enough observe/suggest rounds to cross the RefitEvery boundary
	// twice, exercising both the warm-start hyperfit and fixed-theta paths.
	p := circuits.Branin()
	loop, err := easybo.NewLoop(p, easybo.Options{
		Seed: 22, InitPoints: 4, RefitEvery: 3, FitIters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 14; i++ {
		x, err := loop.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if err := loop.Observe(x, p.Objective(x)); err != nil {
			t.Fatal(err)
		}
	}
	if loop.Observations() != 14 || loop.Pending() != 0 {
		t.Fatalf("obs=%d pending=%d", loop.Observations(), loop.Pending())
	}
}

func TestOptimizeParallelFaultTolerance(t *testing.T) {
	// A flaky objective: panics and NaNs on a deterministic slice of calls.
	// SkipFailures must absorb both without crashing the run or leaking a
	// worker, and the failures must be reported.
	p := circuits.Branin()
	base := p.Objective
	var calls atomic.Int64
	p.Objective = func(x []float64) float64 {
		switch calls.Add(1) % 5 {
		case 0:
			panic("simulator crash")
		case 3:
			return math.NaN()
		}
		return base(x)
	}
	opts := easybo.Options{
		Workers: 4, MaxEvals: 30, Seed: 8, InitPoints: 10, FitIters: 10,
		Async: easybo.AsyncOptions{Policy: easybo.SkipFailures},
	}
	res, err := easybo.OptimizeParallel(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations)+len(res.Failed) != 30 {
		t.Fatalf("ok %d + failed %d != 30", len(res.Evaluations), len(res.Failed))
	}
	if len(res.Failed) == 0 {
		t.Fatal("expected injected failures to be reported")
	}
	for _, e := range res.Evaluations {
		if e.Err != nil || math.IsNaN(e.Y) {
			t.Fatalf("failure leaked into successes: %+v", e)
		}
	}
	util := res.WorkerUtilization()
	if len(util) != 4 {
		t.Fatalf("utilization len = %d", len(util))
	}
}

func TestOptimizeParallelAbortsOnFailureByDefault(t *testing.T) {
	p := circuits.Branin()
	p.Objective = func(x []float64) float64 { panic("always down") }
	_, err := easybo.OptimizeParallel(p, easybo.Options{
		Workers: 2, MaxEvals: 10, Seed: 9, InitPoints: 4, FitIters: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("default policy must abort, got %v", err)
	}
}

func TestOptimizeParallelRetriesTransientFailures(t *testing.T) {
	// Every objective call fails on its first attempt per point; with
	// executor-level retries every evaluation eventually succeeds.
	p := circuits.Branin()
	base := p.Objective
	var mu sync.Mutex
	seen := map[[2]float64]bool{}
	p.Objective = func(x []float64) float64 {
		k := [2]float64{x[0], x[1]}
		mu.Lock()
		first := !seen[k]
		seen[k] = true
		mu.Unlock()
		if first {
			panic("transient fault")
		}
		return base(x)
	}
	res, err := easybo.OptimizeParallel(p, easybo.Options{
		Workers: 3, MaxEvals: 20, Seed: 10, InitPoints: 8, FitIters: 10,
		Async: easybo.AsyncOptions{Policy: easybo.RetryFailures, Retries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 20 {
		t.Fatalf("evaluations = %d, want 20", len(res.Evaluations))
	}
	for _, e := range res.Evaluations {
		if e.Attempts < 2 {
			t.Fatalf("first attempt always fails, yet attempts = %d", e.Attempts)
		}
	}
}

func TestOptimizeVirtualSkipsNaN(t *testing.T) {
	// The virtual engine's failure path through the public API: a slice of
	// the box returns NaN; SkipFailures completes the budget and reports
	// the failures, deterministically.
	p := circuits.Branin()
	base := p.Objective
	p.Objective = func(x []float64) float64 {
		if x[0] > 9 {
			return math.NaN()
		}
		return base(x)
	}
	opts := easybo.Options{
		Workers: 4, MaxEvals: 40, Seed: 1, // seed 1 visits x[0] > 9 in its design
		Async: easybo.AsyncOptions{Policy: easybo.SkipFailures},
	}
	brainFast(&opts)
	r1, err := easybo.Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := easybo.Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Evaluations)+len(r1.Failed) != 40 {
		t.Fatalf("ok %d + failed %d != 40", len(r1.Evaluations), len(r1.Failed))
	}
	if len(r1.Failed) == 0 {
		t.Fatal("expected NaN failures on this seed")
	}
	if r1.BestY != r2.BestY || len(r1.Failed) != len(r2.Failed) || r1.Seconds != r2.Seconds {
		t.Fatal("virtual failure handling must stay deterministic")
	}
	for _, e := range r1.Failed {
		if e.Err == nil || !math.IsNaN(e.Y) {
			t.Fatalf("failed evaluation malformed: %+v", e)
		}
	}
}

func TestLoopForget(t *testing.T) {
	p := circuits.Branin()
	loop, err := easybo.NewLoop(p, easybo.Options{Seed: 12, InitPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	x1, err := loop.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	x2, err := loop.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	if loop.Pending() != 2 {
		t.Fatalf("pending = %d", loop.Pending())
	}
	if !loop.Forget(x1) {
		t.Fatal("Forget must find the pending point")
	}
	if loop.Forget(x1) {
		t.Fatal("second Forget of the same point must report false")
	}
	if loop.Pending() != 1 {
		t.Fatalf("pending after Forget = %d", loop.Pending())
	}
	if err := loop.Observe(x2, p.Objective(x2)); err != nil {
		t.Fatal(err)
	}
	if loop.Pending() != 0 || loop.Observations() != 1 {
		t.Fatalf("pending %d obs %d", loop.Pending(), loop.Observations())
	}
}

func TestOptimizeHonorsCancelledContext(t *testing.T) {
	// Options.Async.Context is threaded into every virtual driver — async,
	// sync, random, and DE: a cancelled context stops the run with an error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []easybo.Algorithm{
		easybo.EasyBO, easybo.PBO, easybo.RandomSearch, easybo.DE,
	} {
		opts := easybo.Options{Algorithm: algo, Workers: 4, MaxEvals: 40, Seed: 1,
			Async: easybo.AsyncOptions{Context: ctx}}
		brainFast(&opts)
		if _, err := easybo.Optimize(circuits.Branin(), opts); err == nil ||
			!strings.Contains(err.Error(), "cancelled") {
			t.Fatalf("%s: cancelled context must abort the virtual run, got %v", algo, err)
		}
	}
}
