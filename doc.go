// Package easybo is an efficient asynchronous batch Bayesian optimization
// library for analog circuit synthesis and other expensive black-box
// maximization problems. It reproduces the EasyBO algorithm of
//
//	S. Zhang, F. Yang, D. Zhou, X. Zeng: "An Efficient Asynchronous Batch
//	Bayesian Optimization Approach for Analog Circuit Synthesis", DAC 2020.
//
// EasyBO drives B parallel workers without synchronization barriers:
// whenever a worker becomes idle it immediately receives the maximizer of a
// randomized-weight acquisition α(x,w) = (1−w)·µ(x) + w·σ̂(x), where
// w = κ/(κ+1) with κ ~ U[0,λ] concentrates sampling on exploration, and σ̂
// is the posterior deviation of a surrogate that "hallucinates" the
// still-running queries as pseudo-observations — collapsing uncertainty
// around busy points so the batch stays diverse without hard penalties.
//
// Three entry points cover the common uses:
//
//   - Optimize runs a complete optimization against a Problem whose
//     evaluations are plain Go functions, on a virtual-time executor (exact,
//     deterministic wall-clock accounting when a Cost model is provided).
//   - OptimizeParallel does the same on real goroutines, for objective
//     functions that are genuinely expensive (external simulators, network
//     calls).
//   - NewLoop exposes an ask-tell interface: Suggest returns the next point
//     to evaluate (accounting for everything suggested but not yet
//     observed), Observe feeds results back. Use this to embed EasyBO in an
//     existing job system.
//
// The circuits subpackage provides the paper's two benchmark problems —
// a two-stage operational amplifier and a class-E power amplifier, both
// evaluated by the built-in SPICE-like simulator — plus classic synthetic
// test functions.
//
// # Performance
//
// The suggestion path is built on an incremental surrogate engine, so the
// cost of keeping B simulators busy does not grow cubically with the
// observation count n:
//
//   - Absorbing a finished observation extends the existing Cholesky factor
//     by one row (O(n²)) instead of rebuilding and refactoring the
//     covariance (O(n²·d) kernel evaluations + O(n³)). The incremental
//     posterior is identical — bitwise, for the built-in kernels — to a
//     from-scratch refit at the same hyperparameters.
//   - Hallucinating the b busy points (the σ̂ of Eq. 9) appends b rows to
//     the factor, O(b·n²) per suggestion.
//   - Hyperparameter re-optimization still pays for full refits, but only on
//     the RefitEvery cadence, warm-started from the previous optimum, and
//     over a pairwise-distance cache that turns every Gram build of the fit
//     into one exponential per entry instead of d+1.
//   - The acquisition maximizer fans its multistart out across goroutines,
//     each worker owning an allocation-free predictor; results are
//     bit-identical for any worker count.
//
// In aggregate a suggestion against n observations costs O(n²) between
// hyperparameter refits, which is what lets the reproduction run far past
// the paper's evaluation budgets. See bench_test.go (BenchmarkGPExtend,
// BenchmarkGPRefit, BenchmarkHallucinate, BenchmarkSuggestHotPath) for the
// measured asymptotics.
//
// The simulator substrate itself runs on a sparse compiled-stamp kernel:
// device stamps are compiled once per circuit into flat slot indices of a
// compressed sparse matrix, the LU split computes the symbolic analysis
// once and refactors numerically (and partially) with zero allocations per
// Newton iteration, AC sweeps run in parallel over reusable per-worker
// workspaces, and Problem.NewObjective hands each optimization worker a
// private reusable simulator instance. The dense reference solver is kept
// for golden equivalence (1e-9 on every analysis); `make bench-json`
// records the sparse-vs-dense speedups in BENCH_4.json. See DESIGN.md.
//
// # Choosing a surrogate backend
//
// Options.Surrogate selects the model behind the optimization
// (internal/surrogate is the model-agnostic layer every consumer goes
// through):
//
//   - SurrogateExact is the paper's exact Gaussian process: the highest
//     fidelity posterior, with O(n³) hyperparameter refits and O(n²)
//     predictions. Right for runs within the paper's budgets (≲ a few
//     hundred evaluations) and required for non-SE-ARD kernels.
//   - SurrogateFeatures performs Bayesian linear regression on a random-
//     Fourier-feature basis of the SE-ARD kernel: O(n·m²) full fits and —
//     decisive for long sessions — O(m²) rank-1 incremental updates and
//     predictions that do not grow with the observation count (m defaults
//     to 256). Hyperparameters are re-estimated periodically on a bounded
//     subsample. The posterior is an m-dimensional approximation: slightly
//     softer than the exact GP, far past it in throughput.
//   - SurrogateAuto (the default) runs exact below Options.EscalateAt
//     observations (default 500) — byte-identical to SurrogateExact there —
//     and escalates to the feature-space backend past it, so long-horizon
//     ask/tell sessions keep a flat per-suggestion latency. See
//     examples/longrun for the latency profile of a 1000-evaluation run.
//
// The easybod service accepts the same choice per session ("surrogate",
// "escalate_at" config fields); snapshots record it, so a restored session
// replays the identical escalation schedule.
//
// # Fault tolerance
//
// Real simulator pools fail: a SPICE run segfaults, diverges to NaN, hangs,
// or the whole campaign is cancelled. The evaluation executors treat all of
// these as first-class failed evaluations, never as crashed runs or leaked
// workers:
//
//   - Every evaluation runs on an explicit worker slot; the slot is released
//     when its result (successful or failed) is absorbed, so worker indices
//     of concurrently running evaluations are always distinct and a crashed
//     evaluation can never deadlock the run.
//   - Panics inside the objective are recovered into failed evaluations;
//     NaN objective values are classified the same way.
//   - Options.Async configures per-evaluation timeouts, bounded retries on
//     the same worker, and context-based cancellation (OptimizeParallel),
//     plus the failure policy shared with virtual runs: AbortOnFailure
//     (default), SkipFailures (the failure consumes budget but never reaches
//     the surrogate), or RetryFailures (the point is resubmitted, bounded by
//     MaxFailures).
//   - Result reports failed evaluations separately from successes, and
//     Result.WorkerUtilization exposes how busy each worker slot was.
//
// For caller-owned pools (NewLoop), Loop.Forget removes a suggested point
// whose evaluation failed permanently, so it stops being hallucinated into
// the surrogate.
//
// # Ask/tell architecture and the easybod service
//
// Internally the optimization loop is inverted: internal/core's AskTell is
// an explicit state machine — Suggest() hands out the next proposal
// (initial-design point, queued resubmission of a failed evaluation, or the
// acquisition maximizer with every pending point hallucinated), and
// Observe(x, y, err) absorbs one outcome in any order, routing failures
// through the shared failure policy. Everything that runs evaluations is a
// thin adapter over that machine: Optimize's executor-driven loop binds
// suggestions to executor launches, OptimizeParallel and Loop bind them to
// caller-owned workers, and the easybod daemon binds them to HTTP.
//
// Command easybod (cmd/easybod) serves many concurrent optimization
// sessions over a JSON HTTP API — POST /sessions, POST /sessions/{id}/ask,
// POST /sessions/{id}/tell, GET /sessions/{id}, plus snapshot/restore
// endpoints for restart-safe sessions. External simulator farms attach as
// plain HTTP clients: ask for a design point, simulate it for however long
// it takes, tell the result back — out of order, from many machines, with
// per-session failure policies (abort, skip, resubmit). `easybo -serve URL`
// runs the built-in testbenches as such a remote worker pool. See the
// README for a curl walkthrough and DESIGN.md for the session-actor
// concurrency model.
//
// # Determinism and static enforcement
//
// Snapshot restore and crash recovery replay the ask/tell event log and
// verify every recorded proposal against the recomputed one, so the whole
// suggestion path — core, surrogates, linear algebra, the simulator — must
// be bit-for-bit deterministic given (seed, config, tell order). That
// invariant is enforced statically: `make lint` runs cmd/easybolint, a
// suite of project-specific analyzers (internal/analysis, stdlib
// go/ast+go/types only) that flag map-iteration order, wall-clock or
// global-rand use, and raw float ==/!= inside the replay-deterministic
// packages, dropped errors on durability calls in the WAL and daemon, and
// malformed or stale suppressions. Intentional exceptions are annotated in
// place:
//
//	//easybolint:ok walltime executor edge: worker timing is wall-clock by nature
//
// The analyzer name and a reason are mandatory, and a directive that no
// longer silences anything is itself reported. DESIGN.md §6 records the
// package-level boundary and the idioms the analyzers steer toward (e.g.
// math.Float64bits comparison for stored-value identity).
package easybo
