// Package easybo is an efficient asynchronous batch Bayesian optimization
// library for analog circuit synthesis and other expensive black-box
// maximization problems. It reproduces the EasyBO algorithm of
//
//	S. Zhang, F. Yang, D. Zhou, X. Zeng: "An Efficient Asynchronous Batch
//	Bayesian Optimization Approach for Analog Circuit Synthesis", DAC 2020.
//
// EasyBO drives B parallel workers without synchronization barriers:
// whenever a worker becomes idle it immediately receives the maximizer of a
// randomized-weight acquisition α(x,w) = (1−w)·µ(x) + w·σ̂(x), where
// w = κ/(κ+1) with κ ~ U[0,λ] concentrates sampling on exploration, and σ̂
// is the posterior deviation of a surrogate that "hallucinates" the
// still-running queries as pseudo-observations — collapsing uncertainty
// around busy points so the batch stays diverse without hard penalties.
//
// Three entry points cover the common uses:
//
//   - Optimize runs a complete optimization against a Problem whose
//     evaluations are plain Go functions, on a virtual-time executor (exact,
//     deterministic wall-clock accounting when a Cost model is provided).
//   - OptimizeParallel does the same on real goroutines, for objective
//     functions that are genuinely expensive (external simulators, network
//     calls).
//   - NewLoop exposes an ask-tell interface: Suggest returns the next point
//     to evaluate (accounting for everything suggested but not yet
//     observed), Observe feeds results back. Use this to embed EasyBO in an
//     existing job system.
//
// The circuits subpackage provides the paper's two benchmark problems —
// a two-stage operational amplifier and a class-E power amplifier, both
// evaluated by the built-in SPICE-like simulator — plus classic synthetic
// test functions.
package easybo
